// Conservative-PDES kernel benchmark and perf record.
//
// Runs the paper's base experiment on the parallel kernel (--pdes) over a
// grid of (clusters, cross-cluster latency, worker count) cells. For each
// (clusters, latency) pair the jobs=1 run is the sequential reference:
// every jobs>1 run must produce a bit-identical record trace (checksum
// equality is enforced — a mismatch aborts the benchmark, because a
// parallel kernel that changes results is wrong, not slow), and its
// speedup over the reference is recorded. Results land in BENCH_pdes.json
// with the execution environment; on a single-hardware-thread machine the
// speedup fields are null with a note instead of a meaningless ratio.
//
//   ./micro_pdes [--hours=0.5] [--out=BENCH_pdes.json] plus common flags.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "rrsim/core/experiment.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClusters[] = {4, 8};
constexpr double kLatencies[] = {1.0, 60.0};
constexpr int kJobs[] = {1, 2, 4};

struct CellRun {
  double elapsed = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t windows = 0;
  std::uint64_t duplicate_starts = 0;
  std::uint64_t messages = 0;  // jobs_generated stand-in for scale
};

std::uint64_t trace_checksum(const metrics::JobRecords& records) {
  std::uint64_t checksum = 1469598103934665603ULL;
  const auto mix = [&checksum](std::uint64_t v) {
    checksum = (checksum * 6364136223846793005ULL) ^ v;
  };
  const auto bits = [](double d) {
    std::uint64_t v = 0;
    std::memcpy(&v, &d, sizeof v);
    return v;
  };
  for (const metrics::JobRecord& r : records) {
    mix(r.grid_id);
    mix(static_cast<std::uint64_t>(r.winner_cluster));
    mix(static_cast<std::uint64_t>(r.replicas_delivered));
    mix(bits(r.submit_time));
    mix(bits(r.start_time));
    mix(bits(r.finish_time));
  }
  return checksum;
}

CellRun run_cell(core::ExperimentConfig config, std::size_t clusters,
                 double latency, int jobs) {
  config.n_clusters = clusters;
  config.pdes = true;
  config.cross_cluster_latency = latency;
  config.pdes_jobs = jobs;
  const auto start = Clock::now();
  const core::SimResult result = core::run_experiment(config);
  CellRun run;
  run.elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  run.checksum = trace_checksum(result.records);
  run.windows = result.pdes_windows;
  run.duplicate_starts = result.duplicate_starts;
  run.messages = result.jobs_generated;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const std::string out_path = cli.get_string("out", "BENCH_pdes.json");

    core::ExperimentConfig base = core::figure_config();
    base.submit_horizon = 0.5 * 3600.0;
    base.scheme = core::RedundancyScheme::parse("ALL");
    base = core::apply_common_flags(base, cli);
    // The grid below owns these three knobs.
    base.pdes = true;

    std::printf("=== micro_pdes - conservative parallel kernel ===\n");
    std::printf(
        "clusters x latency x workers grid; per (clusters, latency) the\n"
        "jobs=1 run is the sequential reference and every jobs>1 trace\n"
        "must match it bit-exactly (checksum-enforced)\n\n");

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot open " + out_path);
    }
    std::fprintf(f, "{\n  \"benchmark\": \"micro_pdes\",\n");
    bench::write_json_env_fields(f, exec::default_jobs());
    std::fprintf(f, "  \"cells\": [\n");

    bool first_cell = true;
    for (const std::size_t clusters : kClusters) {
      for (const double latency : kLatencies) {
        CellRun reference;
        for (const int jobs : kJobs) {
          const CellRun run = run_cell(base, clusters, latency, jobs);
          if (jobs == 1) {
            reference = run;
          } else if (run.checksum != reference.checksum) {
            std::fclose(f);
            throw std::runtime_error(
                "determinism violation: PDES trace with jobs=" +
                std::to_string(jobs) + " diverged from the sequential "
                "reference at clusters=" + std::to_string(clusters) +
                " latency=" + std::to_string(latency));
          }
          const double speedup =
              jobs == 1 ? 1.0 : reference.elapsed / run.elapsed;
          std::printf(
              "  clusters=%zu latency=%5.1fs jobs=%d : %7.2f s  "
              "(speedup %.2fx, %llu windows, %llu duplicate starts)\n",
              clusters, latency, jobs, run.elapsed, speedup,
              static_cast<unsigned long long>(run.windows),
              static_cast<unsigned long long>(run.duplicate_starts));
          std::fprintf(f, "%s    {\n", first_cell ? "" : ",\n");
          first_cell = false;
          std::fprintf(f,
                       "      \"clusters\": %zu,\n"
                       "      \"latency_s\": %.3f,\n"
                       "      \"jobs\": %d,\n"
                       "      \"jobs_generated\": %llu,\n"
                       "      \"elapsed_seconds\": %.4f,\n"
                       "      \"windows\": %llu,\n"
                       "      \"duplicate_starts\": %llu,\n"
                       "      \"trace_checksum\": \"%016llx\",\n",
                       clusters, latency, jobs,
                       static_cast<unsigned long long>(run.messages),
                       run.elapsed,
                       static_cast<unsigned long long>(run.windows),
                       static_cast<unsigned long long>(run.duplicate_starts),
                       static_cast<unsigned long long>(run.checksum));
          if (jobs == 1) {
            std::fprintf(f, "      \"speedup_vs_one_worker\": 1.0\n");
          } else {
            // Indent shim: the shared helper writes at top-level indent.
            std::fprintf(f, "    ");
            bench::write_json_speedup_field(f, "speedup_vs_one_worker",
                                            reference.elapsed / run.elapsed);
            std::fprintf(f, "      \"matches_sequential_trace\": true\n");
          }
          std::fprintf(f, "    }");
        }
      }
    }
    std::fprintf(f, "\n  ],\n  \"deterministic_across_workers\": true\n}\n");
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
