// Extension (paper §2/§6): per-user pending-request limits as a
// mitigation for redundant requests. The paper notes schedulers can cap a
// user's pending requests and asks whether "solutions to prevent or limit
// their use may or may not be necessary". This harness quantifies the
// knob: with 40% of jobs using ALL redundancy, sweep the per-user cap and
// watch the unfair advantage (n-r vs r stretch) and the middleware load
// (replica submissions/cancellations) shrink.
//
//   ./ext_limits [--reps=3|--full] [--users=4] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Extension - per-user pending limits as a redundancy mitigation",
        "N=10, 40% of jobs use ALL; 'advantage' = n-r stretch / r stretch\n"
        "(1.0 would be perfectly fair); limit 0 = uncapped",
        reps);

    core::ExperimentConfig base = core::figure_config();
    base.scheme = core::RedundancyScheme::all();
    base.redundant_fraction = 0.4;
    base.users_per_cluster = 4;  // few users -> many jobs per user
    base = core::apply_common_flags(base, cli);

    const std::vector<int> limits{0, 16, 8, 4, 2, 1};
    std::vector<core::ClassifiedCampaign> results(limits.size());
    std::vector<core::SimResult> probes(limits.size());
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < limits.size(); ++i) {
      core::ExperimentConfig c = base;
      c.per_user_pending_limit = limits[i];
      sweep.add_classified(
          c, [&results, i](const core::ClassifiedCampaign& m) {
            results[i] = m;
          });
      // Ops from one representative run (ops scale linearly with reps).
      sweep.runner().add(
          1,
          [c](int) {
            return core::run_experiment(c, core::thread_workspace());
          },
          [&probes, i](int, core::SimResult r) { probes[i] = std::move(r); });
    }
    sweep.run();

    util::Table table({"per-user cap", "r stretch", "n-r stretch",
                       "advantage", "replica submits", "rejected",
                       "cancellations"});
    for (std::size_t i = 0; i < limits.size(); ++i) {
      const core::ClassifiedCampaign& res = results[i];
      const core::SimResult& sim = probes[i];
      table.begin_row()
          .add(limits[i] == 0 ? std::string("off")
                              : std::to_string(limits[i]))
          .add(res.avg_stretch_redundant, 2)
          .add(res.avg_stretch_non_redundant, 2)
          .add(res.avg_stretch_redundant > 0.0
                   ? res.avg_stretch_non_redundant /
                         res.avg_stretch_redundant
                   : 0.0,
               2)
          .add(static_cast<long long>(sim.ops.submits))
          .add(static_cast<long long>(sim.replicas_rejected))
          .add(static_cast<long long>(sim.gateway_cancels));
    }
    table.print(std::cout);
    std::printf("\ntight caps trim replicas (fewer submits/cancels) and "
                "shrink the\nredundant users' advantage toward fairness\n");
    bench::sweep_summary(sweep.jobs());
  });
}
