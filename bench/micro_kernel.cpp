// DES kernel hot-path benchmark and perf record.
//
// Drives one schedule–cancel–dispatch churn workload — batched arrivals
// spread over a wide horizon, a quarter of them cancelled before firing,
// callbacks injecting same-pass follow-ups, exactly the event mix a
// redundant-request campaign produces — through the production kernel
// (calendar queue + inline callbacks + pooled slab) and through an
// in-file replica of the design it replaced (one binary heap over the
// whole pending set, std::function callbacks, lazy-skip cancels).
// Verifies both kernels dispatch the identical event sequence in the
// same run that measures the speedup, benchmarks the flat job-table maps
// against the std containers they replaced, and writes everything to
// BENCH_kernel.json so future PRs have a perf trajectory.
//
//   ./micro_kernel [--batches=60] [--events=4000] [--map-ops=2000000]
//                  [--mode=both|new|legacy] [--out=BENCH_kernel.json]
//
// An equivalence violation (kernel trace or map-content divergence) is a
// hard failure: the process exits non-zero, and the perf_smoke ctest
// entry runs a small configuration on every test run.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "rrsim/des/simulation.h"
#include "rrsim/util/flat_map.h"
#include "rrsim/util/rng.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Legacy kernel replica: the seed tree's event queue. One binary heap
// ordered by (time, priority, sequence) over the *entire* pending set,
// slots holding std::function callbacks (heap-allocating for any capture
// beyond the SBO), cancels retiring the slot and leaving the heap entry
// to be skipped lazily at pop. Kept in-file so the calendar queue's win
// stays measurable against the design it replaced.
class LegacyKernel {
 public:
  class EventHandle {
   public:
    EventHandle() = default;
    bool cancel() noexcept {
      if (kernel_ == nullptr) return false;
      LegacyKernel* k = kernel_;
      kernel_ = nullptr;
      return k->cancel(slot_, gen_);
    }

   private:
    friend class LegacyKernel;
    EventHandle(LegacyKernel* k, std::uint32_t slot, std::uint64_t gen)
        : kernel_(k), slot_(slot), gen_(gen) {}
    LegacyKernel* kernel_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  des::Time now() const noexcept { return now_; }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  EventHandle schedule_at(des::Time t, std::function<void()> cb,
                          des::Priority prio) {
    if (!(t >= now_)) {
      throw std::invalid_argument("legacy schedule_at: time in the past");
    }
    std::uint32_t idx;
    if (free_.empty()) {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    Slot& slot = slots_[idx];
    slot.callback = std::move(cb);
    slot.live = true;
    heap_.push_back(Entry{t, static_cast<int>(prio), next_seq_++, idx,
                          slot.generation});
    std::push_heap(heap_.begin(), heap_.end(), Compare{});
    return EventHandle(this, idx, slot.generation);
  }

  bool step() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Compare{});
      const Entry e = heap_.back();
      heap_.pop_back();
      Slot& slot = slots_[e.slot];
      if (!slot.live || slot.generation != e.gen) continue;  // stale
      now_ = e.time;
      std::function<void()> cb = std::move(slot.callback);
      retire(e.slot);
      ++dispatched_;
      cb();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(des::Time t) {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Compare{});
      const Entry e = heap_.back();
      if (e.time > t) {  // put it back, we are done
        std::push_heap(heap_.begin(), heap_.end(), Compare{});
        break;
      }
      heap_.pop_back();
      Slot& slot = slots_[e.slot];
      if (!slot.live || slot.generation != e.gen) continue;
      now_ = e.time;
      std::function<void()> cb = std::move(slot.callback);
      retire(e.slot);
      ++dispatched_;
      cb();
    }
    if (t > now_) now_ = t;
  }

 private:
  struct Slot {
    std::function<void()> callback;
    std::uint64_t generation = 0;
    bool live = false;
  };
  struct Entry {
    des::Time time;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Compare {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  bool cancel(std::uint32_t idx, std::uint64_t gen) noexcept {
    Slot& slot = slots_[idx];
    if (!slot.live || slot.generation != gen) return false;
    slot.callback = nullptr;
    retire(idx);  // heap entry stays behind, skipped lazily
    return true;
  }

  void retire(std::uint32_t idx) noexcept {
    Slot& slot = slots_[idx];
    slot.live = false;
    ++slot.generation;
    free_.push_back(idx);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  des::Time now_ = 0.0;
};

// ---------------------------------------------------------------------------
// Kernel churn workload. Each batch schedules a spread of events over a
// wide horizon (deep far tier), cancels a quarter of them, then advances
// half the horizon so roughly half the batch stays pending into the next
// one — steady-state churn, not a drain-from-empty toy. A fifth of the
// dispatched events schedule a short-fuse follow-up from inside their
// callback, exercising schedule-during-dispatch. The dispatch trace is
// folded into a checksum keyed by event id and the bit pattern of the
// dispatch timestamp, so the legacy/new comparison is bit-exact.

struct ChurnStats {
  double elapsed = 0.0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t checksum = 0;
  double ops_per_sec() const {
    return static_cast<double>(scheduled + cancelled + dispatched) / elapsed;
  }
};

void fold(ChurnStats& s, std::uint64_t id, double when) {
  std::uint64_t bits;
  std::memcpy(&bits, &when, sizeof bits);
  s.checksum = (s.checksum * 6364136223846793005ULL) ^ (id + bits);
}

template <typename Kernel>
ChurnStats run_churn(int batches, int events_per_batch, std::uint64_t seed) {
  constexpr double kHorizon = 5.0e4;
  const auto start = Clock::now();
  Kernel k;
  util::Rng rng(seed);
  ChurnStats s;
  std::uint64_t next_id = 1;
  std::vector<typename Kernel::EventHandle> handles;
  handles.reserve(static_cast<std::size_t>(events_per_batch));

  for (int b = 0; b < batches; ++b) {
    const double base = k.now();
    handles.clear();
    for (int i = 0; i < events_per_batch; ++i) {
      const std::uint64_t id = next_id++;
      const double t = base + rng.uniform(0.0, kHorizon);
      const auto prio =
          static_cast<des::Priority>(rng.between(0, 3));
      const bool follow_up = rng.chance(0.2);
      handles.push_back(k.schedule_at(
          t,
          [&k, &s, id, follow_up] {
            fold(s, id, k.now());
            if (follow_up) {
              // Same-pass insertion: fires within the current run/run_until
              // window, after already-queued events of equal (time, prio).
              ++s.scheduled;
              k.schedule_at(k.now() + 0.25,
                            [&s, id] { fold(s, id ^ 0x9e3779b97f4a7c15ULL,
                                            0.25); },
                            des::Priority::kControl);
            }
          },
          prio));
      ++s.scheduled;
    }
    for (auto& h : handles) {
      if (rng.chance(0.25) && h.cancel()) ++s.cancelled;
    }
    k.run_until(base + kHorizon / 2.0);
  }
  k.run();
  s.dispatched = k.dispatched();
  s.elapsed = seconds_since(start);
  return s;
}

// ---------------------------------------------------------------------------
// Job-table map churn: the access mix of the scheduler/gateway hot path
// (insert on submit, point lookups on grant/finish, erase on cancel) over
// a bounded id universe, run through each flat map and the std container
// it replaced. The op script is a pure function of the loop index, so
// every container sees the identical sequence; the observable aggregate
// (hits, value sum, final size) must match across the pair. The universe
// is sized to the table being modelled: the hash pair stands in for the
// pending/tracking tables (tens of thousands of ids touched across a
// campaign-length cancel storm), the ordered pair for the running-jobs
// table, whose population is bounded by cluster node count (order of a
// hundred) but which the scheduler *walks in key order* on every profile
// rebuild and dispatch pass — so the ordered churn interleaves a full
// iteration every IterateEvery ops.

struct MapStats {
  double elapsed = 0.0;
  std::int64_t ops = 0;
  std::uint64_t hits = 0;
  double value_sum = 0.0;
  std::size_t final_size = 0;
  double ops_per_sec() const { return static_cast<double>(ops) / elapsed; }
  bool agrees_with(const MapStats& o) const {
    return hits == o.hits && value_sum == o.value_sum &&
           final_size == o.final_size;
  }
};

bool map_insert(util::FlatHashMap<std::uint64_t, double>& m, std::uint64_t k,
                double v) {
  return m.try_emplace(k, v).inserted;
}
bool map_insert(util::FlatOrderedMap<std::uint64_t, double>& m,
                std::uint64_t k, double v) {
  return m.emplace(k, v).second;
}
template <typename StdMap>
bool map_insert(StdMap& m, std::uint64_t k, double v) {
  return m.try_emplace(k, v).second;
}

const double* map_find(const util::FlatHashMap<std::uint64_t, double>& m,
                       std::uint64_t k) {
  return m.find(k);
}
template <typename MapWithIterators>
const double* map_find(const MapWithIterators& m, std::uint64_t k) {
  const auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

template <typename Map, int IterateEvery = 0>
MapStats run_map_churn(std::int64_t ops, std::uint64_t universe) {
  const auto start = Clock::now();
  Map m;
  MapStats s;
  s.ops = ops;
  std::uint64_t x = 0x243f6a8885a308d3ULL;  // splitmix-style op script
  for (std::int64_t i = 0; i < ops; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    const std::uint64_t key = (z ^ (z >> 31)) % universe;
    switch (i & 3) {
      case 0:
        map_insert(m, key, static_cast<double>(key) * 1.5);
        break;
      case 3:
        m.erase(key);
        break;
      default:
        if (const double* v = map_find(m, key)) {
          ++s.hits;
          s.value_sum += *v;
        }
        break;
    }
    if constexpr (IterateEvery != 0) {
      if (i % IterateEvery == 0) {
        for (const auto& kv : m) s.value_sum += kv.second;
      }
    }
  }
  s.final_size = m.size();
  s.elapsed = seconds_since(start);
  return s;
}

void print_kernel_row(const char* name, const ChurnStats& s) {
  std::printf("  %-14s %8.3f s  %9llu dispatched  %7llu cancelled  %12.0f "
              "events/s\n",
              name, s.elapsed, static_cast<unsigned long long>(s.dispatched),
              static_cast<unsigned long long>(s.cancelled), s.ops_per_sec());
}

void print_map_row(const char* name, const MapStats& s) {
  std::printf("  %-14s %8.3f s  %12.0f ops/s  (%llu hits, %zu resident)\n",
              name, s.elapsed, s.ops_per_sec(),
              static_cast<unsigned long long>(s.hits), s.final_size);
}

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const auto batches = static_cast<int>(cli.get_int("batches", 60));
    const auto events = static_cast<int>(cli.get_int("events", 4000));
    const std::int64_t map_ops = cli.get_int("map-ops", 2000000);
    const std::string mode = cli.get_string("mode", "both");
    const std::string out_path = cli.get_string("out", "BENCH_kernel.json");
    if (batches < 1 || events < 1 || map_ops < 1) {
      throw std::invalid_argument(
          "--batches, --events and --map-ops must be >= 1");
    }
    if (mode != "both" && mode != "new" && mode != "legacy") {
      throw std::invalid_argument("--mode must be both, new or legacy");
    }

    std::printf("=== micro_kernel - DES kernel hot-path throughput ===\n");
    std::printf(
        "schedule-cancel-dispatch churn (%d batches x %d events, 25%%\n"
        "cancelled, 20%% follow-up insertions) through the calendar-queue\n"
        "kernel and the binary-heap + std::function design it replaced;\n"
        "dispatch traces must be bit-identical. Then job-table map churn\n"
        "(%lld ops) through the flat maps and their std counterparts.\n\n",
        batches, events, static_cast<long long>(map_ops));

    constexpr std::uint64_t kSeed = 20260807;
    ChurnStats fresh, legacy;
    if (mode != "legacy") {
      fresh = run_churn<des::Simulation>(batches, events, kSeed);
      print_kernel_row("calendar", fresh);
    }
    if (mode != "new") {
      legacy = run_churn<LegacyKernel>(batches, events, kSeed);
      print_kernel_row("binary-heap", legacy);
    }
    const bool both = mode == "both";
    if (both) {
      // Behaviour-preservation contract, enforced in the measuring run:
      // same events dispatched, same order, same timestamps to the bit.
      if (fresh.checksum != legacy.checksum ||
          fresh.dispatched != legacy.dispatched ||
          fresh.cancelled != legacy.cancelled ||
          fresh.scheduled != legacy.scheduled) {
        throw std::runtime_error(
            "equivalence violation: calendar-queue kernel diverged from "
            "the binary-heap baseline");
      }
      std::printf("\ncalendar vs binary-heap: %.2fx  (traces "
                  "bit-identical)\n\n",
                  legacy.elapsed / fresh.elapsed);
    } else {
      std::printf("\n(single-kernel mode: equivalence not checked)\n\n");
    }

    constexpr std::uint64_t kPendingUniverse = 65536;  // cancel-storm depth
    constexpr std::uint64_t kRunningUniverse = 256;    // ~cluster node count
    constexpr int kWalkEvery = 64;  // ops between running-table walks
    const auto flat_hash = run_map_churn<
        util::FlatHashMap<std::uint64_t, double>>(map_ops, kPendingUniverse);
    print_map_row("flat-hash", flat_hash);
    // rrsim-lint-allow(unordered-container): the legacy baseline this
    // benchmark compares the flat tables against; results are timings.
    using LegacyMap = std::unordered_map<std::uint64_t, double>;
    const auto std_unordered =
        run_map_churn<LegacyMap>(map_ops, kPendingUniverse);
    print_map_row("unordered_map", std_unordered);
    const auto flat_ordered =
        run_map_churn<util::FlatOrderedMap<std::uint64_t, double>, kWalkEvery>(
            map_ops, kRunningUniverse);
    print_map_row("flat-ordered", flat_ordered);
    const auto std_ordered =
        run_map_churn<std::map<std::uint64_t, double>, kWalkEvery>(
            map_ops, kRunningUniverse);
    print_map_row("std::map", std_ordered);
    if (!flat_hash.agrees_with(std_unordered) ||
        !flat_ordered.agrees_with(std_ordered)) {
      throw std::runtime_error(
          "equivalence violation: flat map diverged from its std "
          "counterpart under the same op script");
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot write " + out_path);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"micro_kernel\",\n");
    bench::write_json_env_fields(f, 1);
    std::fprintf(f,
                 "  \"batches\": %d,\n"
                 "  \"events_per_batch\": %d,\n"
                 "  \"mode\": \"%s\",\n",
                 batches, events, mode.c_str());
    if (mode != "legacy") {
      std::fprintf(f,
                   "  \"kernel_calendar_seconds\": %.4f,\n"
                   "  \"kernel_calendar_events_per_sec\": %.0f,\n"
                   "  \"kernel_calendar_dispatched\": %llu,\n",
                   fresh.elapsed, fresh.ops_per_sec(),
                   static_cast<unsigned long long>(fresh.dispatched));
    }
    if (mode != "new") {
      std::fprintf(f,
                   "  \"kernel_binary_heap_seconds\": %.4f,\n"
                   "  \"kernel_binary_heap_events_per_sec\": %.0f,\n",
                   legacy.elapsed, legacy.ops_per_sec());
    }
    if (both) {
      std::fprintf(f,
                   "  \"kernel_speedup_vs_binary_heap\": %.4f,\n"
                   "  \"kernel_traces_bit_identical\": true,\n",
                   legacy.elapsed / fresh.elapsed);
    }
    std::fprintf(f,
                 "  \"map_ops\": %lld,\n"
                 "  \"flat_hash_ops_per_sec\": %.0f,\n"
                 "  \"unordered_map_ops_per_sec\": %.0f,\n"
                 "  \"flat_hash_speedup\": %.4f,\n"
                 "  \"flat_ordered_ops_per_sec\": %.0f,\n"
                 "  \"std_map_ops_per_sec\": %.0f,\n"
                 "  \"flat_ordered_speedup\": %.4f,\n"
                 "  \"maps_equivalent\": true\n"
                 "}\n",
                 static_cast<long long>(map_ops), flat_hash.ops_per_sec(),
                 std_unordered.ops_per_sec(),
                 std_unordered.elapsed / flat_hash.elapsed,
                 flat_ordered.ops_per_sec(), std_ordered.ops_per_sec(),
                 std_ordered.elapsed / flat_ordered.elapsed);
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
