// Micro-benchmarks (google-benchmark) of the substrate costs that bound
// experiment wall time: DES event dispatch, workload sampling, scheduler
// pass costs at various queue depths, profile operations, and one
// end-to-end small experiment.

#include <benchmark/benchmark.h>

#include "rrsim/core/experiment.h"
#include "rrsim/core/paper.h"
#include "rrsim/des/simulation.h"
#include "rrsim/loadmodel/frontend.h"
#include "rrsim/sched/factory.h"
#include "rrsim/sched/profile.h"
#include "rrsim/util/rng.h"
#include "rrsim/workload/lublin.h"

namespace {

using namespace rrsim;

void BM_DesScheduleDispatch(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_DesScheduleDispatch)->Arg(1000)->Arg(100000);

void BM_LublinSampleJob(benchmark::State& state) {
  util::Rng rng(1);
  const workload::LublinModel model(workload::LublinParams{}, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_job(rng));
  }
}
BENCHMARK(BM_LublinSampleJob);

void BM_ProfileEarliestStart(benchmark::State& state) {
  const int reservations = static_cast<int>(state.range(0));
  util::Rng rng(2);
  sched::Profile profile(128);
  for (int i = 0; i < reservations; ++i) {
    const int nodes = static_cast<int>(rng.between(1, 64));
    const double dur = rng.uniform(10.0, 500.0);
    const double s = profile.earliest_start(0.0, nodes, dur);
    profile.reserve(s, dur, nodes);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_start(0.0, 32, 120.0));
  }
}
BENCHMARK(BM_ProfileEarliestStart)->Arg(10)->Arg(100)->Arg(1000);

void BM_SchedulerPassAtDepth(benchmark::State& state) {
  // Cost of one submit (which runs a scheduling pass) at a given queue
  // depth, for each algorithm.
  const auto algo = static_cast<sched::Algorithm>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  des::Simulation sim;
  auto sched = make_scheduler(algo, sim, 128);
  util::Rng rng(3);
  sched::JobId id = 1;
  // A long wall occupying all but one node: one node stays free so EASY
  // must actually scan the queue for backfill candidates on every pass
  // (with zero free nodes the pass short-circuits).
  sched::Job wall;
  wall.id = id++;
  wall.nodes = 127;
  wall.requested_time = 1e8;
  wall.actual_time = 1e8;
  sched->submit(wall);
  for (std::size_t i = 0; i < depth; ++i) {
    sched::Job job;
    job.id = id++;
    job.nodes = static_cast<int>(rng.between(2, 128));  // never fits now
    job.requested_time = rng.uniform(60.0, 3600.0);
    job.actual_time = job.requested_time;
    sched->submit(job);
  }
  // Measured unit: one submit + one cancel pair, so the queue depth stays
  // fixed across iterations.
  for (auto _ : state) {
    sched::Job job;
    job.id = id++;
    job.nodes = 2;
    job.requested_time = 60.0;
    job.actual_time = 60.0;
    sched->submit(job);
    sched->cancel(job.id);
    benchmark::DoNotOptimize(sched->queue_length());
  }
}
BENCHMARK(BM_SchedulerPassAtDepth)
    ->ArgsProduct({{0 /*fcfs*/, 1 /*easy*/}, {100, 1000, 10000}})
    ->ArgNames({"algo", "depth"});
BENCHMARK(BM_SchedulerPassAtDepth)
    ->Args({2 /*cbf*/, 100})
    ->Args({2, 1000})
    ->ArgNames({"algo", "depth"});

void BM_FrontEndOpPair(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  loadmodel::FrontEnd fe(16);
  fe.prefill(depth, rng);
  for (auto _ : state) {
    fe.submit(1, 3600.0);
    fe.cancel_head();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrontEndOpPair)->Arg(0)->Arg(10000)->Arg(20000);

void BM_EndToEndExperiment(benchmark::State& state) {
  for (auto _ : state) {
    core::ExperimentConfig c = core::figure_config_quick();
    c.n_clusters = 4;
    c.submit_horizon = 900.0;
    c.scheme = core::RedundancyScheme::half();
    benchmark::DoNotOptimize(core::run_experiment(c).records.size());
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
