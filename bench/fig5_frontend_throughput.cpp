// Figure 5: measured batch-scheduler front-end throughput (submit+cancel
// pairs per second) versus queue depth. The paper saturated OpenPBS/Maui
// on a 1 GHz Pentium III with qsub/qdel pairs at queue depths up to
// 20,000 and observed ~11 -> ~5 ops/s decay. We run the same protocol
// against rrsim's in-process front-end (real wall-clock measurement, one
// Maui-style scheduling iteration per operation) — absolute numbers are
// far higher, the decaying shape is the reproduced result. The fitted
// exponential-decay parameters and the paper-calibrated model are printed
// for comparison.
//
//   ./fig5_frontend_throughput [--pairs=2000] [--runs=4] [--seed=11]

#include "bench_common.h"
#include "rrsim/loadmodel/frontend.h"
#include "rrsim/loadmodel/throughput_model.h"
#include "rrsim/util/rng.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int pairs = static_cast<int>(cli.get_int("pairs", 2000));
    const int runs = static_cast<int>(cli.get_int("runs", 4));
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));
    std::printf("=== Figure 5 - front-end submit/cancel throughput vs queue "
                "size ===\n");
    std::printf("measured on this machine against rrsim's front-end; the\n"
                "paper's OpenPBS/Maui decays ~11 -> ~5 ops/s over the same "
                "depths\n\n");

    const std::vector<std::size_t> depths{0, 2500, 5000, 10000, 15000, 20000};
    std::vector<std::vector<loadmodel::ThroughputPoint>> all_runs;
    for (int r = 0; r < runs; ++r) {
      all_runs.push_back(
          loadmodel::measure_throughput(16, depths, pairs, rng));
    }

    std::vector<std::string> headers{"queue size"};
    for (int r = 0; r < runs; ++r) {
      headers.push_back("run" + std::to_string(r + 1) + " pairs/s");
    }
    headers.push_back("average");
    util::Table table(headers);
    std::vector<std::pair<double, double>> avg_points;
    for (std::size_t d = 0; d < depths.size(); ++d) {
      table.begin_row().add(static_cast<long long>(depths[d]));
      double sum = 0.0;
      for (int r = 0; r < runs; ++r) {
        const double v = all_runs[static_cast<std::size_t>(r)][d].pairs_per_sec;
        table.add(v, 0);
        sum += v;
      }
      const double avg = sum / runs;
      table.add(avg, 0);
      avg_points.emplace_back(static_cast<double>(depths[d]), avg);
    }
    table.print(std::cout);

    const loadmodel::ExpDecayModel fit = loadmodel::fit_exp_decay(avg_points);
    const loadmodel::ExpDecayModel paper =
        loadmodel::ExpDecayModel::paper_calibrated();
    std::printf("\nexp-decay fit of the measurements: floor=%.0f "
                "amplitude=%.0f scale=%.0f (pairs/s)\n",
                fit.floor(), fit.amplitude(), fit.scale());
    std::printf("paper-calibrated model (ops/s each way): floor=%.2f "
                "amplitude=%.2f scale=%.0f -> %.1f @0, %.1f @10k, %.1f "
                "@20k\n",
                paper.floor(), paper.amplitude(), paper.scale(),
                paper.at(0.0), paper.at(10000.0), paper.at(20000.0));
    const double ratio0 = fit.at(0.0) / fit.at(20000.0);
    std::printf("measured decay factor empty->20k: %.2fx (paper: ~%.2fx)\n",
                ratio0, paper.at(0.0) / paper.at(20000.0));
  });
}
