// Sweep-engine benchmark and perf record.
//
// Runs one multi-point relative sweep (the shape of every figure/table
// harness: K redundancy schemes x reps replications, each replication a
// scheme-vs-NONE experiment pair) three times:
//
//   1. serial, trace cache disabled  — the pre-sweep-engine baseline:
//      every experiment regenerates its Lublin streams from scratch;
//   2. serial, trace cache enabled   — isolates the memoization win;
//   3. parallel (--jobs), cache on   — adds the flat work-unit pool.
//
// All three must produce bit-identical metrics (enforced), so the record
// measures pure execution-strategy wins. Results land in BENCH_sweep.json
// with the execution environment, so numbers from a 1-core container and
// a 16-core workstation are distinguishable: on a single hardware thread
// only the cache win shows up; the parallel win needs real cores.
//
//   ./micro_sweep [--reps=4] [--hours=1] [--jobs=N]
//                 [--out=BENCH_sweep.json] plus common flags.

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

const std::vector<const char*> kSchemes{"R2", "R3", "R4", "HALF", "ALL"};

struct SweepRun {
  double elapsed = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<core::RelativeMetrics> results;
};

SweepRun run_sweep(const core::ExperimentConfig& base, int reps, int jobs,
                   bool cache_on) {
  workload::TraceCache& cache = workload::TraceCache::global();
  cache.set_enabled(cache_on);
  cache.clear();  // every mode starts cold: no cross-mode carry-over

  SweepRun run;
  run.results.resize(kSchemes.size());
  const auto start = Clock::now();
  core::CampaignSweep sweep(reps, jobs);
  for (std::size_t i = 0; i < kSchemes.size(); ++i) {
    core::ExperimentConfig c = base;
    c.scheme = core::RedundancyScheme::parse(kSchemes[i]);
    sweep.add_relative(c, [&run, i](const core::RelativeMetrics& m) {
      run.results[i] = m;
    });
  }
  sweep.run();
  run.elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  run.cache_hits = cache.hits();
  run.cache_misses = cache.misses();
  return run;
}

void check_identical(const SweepRun& a, const SweepRun& b,
                     const char* label) {
  for (std::size_t i = 0; i < kSchemes.size(); ++i) {
    if (a.results[i].rel_avg_stretch != b.results[i].rel_avg_stretch ||
        a.results[i].rel_cv_stretch != b.results[i].rel_cv_stretch ||
        a.results[i].win_rate != b.results[i].win_rate) {
      throw std::runtime_error(std::string("determinism violation: ") +
                               label + " diverged at point " + kSchemes[i]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 4);
    const int jobs = exec::default_jobs();
    const std::string out_path = cli.get_string("out", "BENCH_sweep.json");

    core::ExperimentConfig base = core::figure_config();
    base.submit_horizon = 1.0 * 3600.0;
    base = core::apply_common_flags(base, cli);

    std::printf("=== micro_sweep - sweep engine throughput ===\n");
    std::printf(
        "one %zu-point x %d-rep relative sweep (each rep is a scheme +\n"
        "NONE experiment pair) under three execution strategies; all three\n"
        "must agree bit-exactly\n\n",
        kSchemes.size(), reps);

    const SweepRun baseline = run_sweep(base, reps, 1, false);
    std::printf("  serial, cache off : %8.2f s  (%" PRIu64
                " stream generations)\n",
                baseline.elapsed, baseline.cache_misses);
    const SweepRun cached = run_sweep(base, reps, 1, true);
    std::printf("  serial, cache on  : %8.2f s  (%" PRIu64 " hits / %" PRIu64
                " misses)\n",
                cached.elapsed, cached.cache_hits, cached.cache_misses);
    const SweepRun parallel = run_sweep(base, reps, jobs, true);
    std::printf("  --jobs %-2d, cache on: %7.2f s  (%" PRIu64 " hits / %" PRIu64
                " misses)\n",
                jobs, parallel.elapsed, parallel.cache_hits,
                parallel.cache_misses);

    check_identical(baseline, cached, "cache on vs off");
    check_identical(baseline, parallel, "--jobs 1 vs --jobs N");

    const double cache_speedup = baseline.elapsed / cached.elapsed;
    const double parallel_speedup = cached.elapsed / parallel.elapsed;
    const double total_speedup = baseline.elapsed / parallel.elapsed;
    const double hit_rate =
        cached.cache_hits + cached.cache_misses > 0
            ? static_cast<double>(cached.cache_hits) /
                  static_cast<double>(cached.cache_hits +
                                      cached.cache_misses)
            : 0.0;
    std::printf(
        "\nspeedup vs serial-uncached: cache alone %.2fx, + %d workers "
        "%.2fx total\ncache hit rate %.0f%% (results bit-identical across "
        "all modes)\n",
        cache_speedup, jobs, total_speedup, hit_rate * 100.0);

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot write " + out_path);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"micro_sweep\",\n");
    bench::write_json_env_fields(f, jobs);
    std::fprintf(f,
                 "  \"sweep_points\": %zu,\n"
                 "  \"reps_per_point\": %d,\n"
                 "  \"serial_nocache_seconds\": %.4f,\n"
                 "  \"serial_cached_seconds\": %.4f,\n"
                 "  \"parallel_seconds\": %.4f,\n"
                 "  \"cache_hits\": %" PRIu64 ",\n"
                 "  \"cache_misses\": %" PRIu64 ",\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"cache_speedup\": %.4f,\n",
                 kSchemes.size(), reps, baseline.elapsed, cached.elapsed,
                 parallel.elapsed, cached.cache_hits, cached.cache_misses,
                 hit_rate, cache_speedup);
    bench::write_json_speedup_field(f, "parallel_speedup", parallel_speedup);
    std::fprintf(f,
                 "  \"total_speedup_vs_serial\": %.4f,\n"
                 "  \"deterministic_across_modes\": true\n"
                 "}\n",
                 total_speedup);
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
