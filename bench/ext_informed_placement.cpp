// Extension (paper §2, related work): the paper contrasts user-driven
// *blind* redundant requests with metascheduler-style informed placement
// (Subramani et al. choose remote clusters by queue state and "play
// nice"). This harness compares the three placement policies rrsim
// implements — uniform (blind), biased (Table 2), least-loaded
// (informed) — at several redundancy degrees.
//
//   ./ext_informed_placement [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Extension - blind vs informed replica placement",
        "N=10; relative average stretch (vs NONE) per placement policy;\n"
        "least-loaded picks the shortest queues at submission time",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    util::Table table({"scheme", "uniform (blind)", "biased",
                       "least-loaded (informed)"});
    for (const char* scheme : {"R2", "R3", "HALF"}) {
      table.begin_row().add(scheme);
      for (const char* placement : {"uniform", "biased", "least-loaded"}) {
        core::ExperimentConfig c = base;
        c.scheme = core::RedundancyScheme::parse(scheme);
        c.placement = placement;
        const core::RelativeMetrics rel =
            core::run_relative_campaign(c, reps);
        table.add(rel.rel_avg_stretch, 3);
        std::fflush(stdout);
      }
    }
    table.print(std::cout);
    std::printf("\ninformed placement extracts most of the benefit with "
                "fewer replicas\n(R2 informed vs HALF blind), i.e. a "
                "metascheduler needs less redundancy\n");
  });
}
