// Extension (paper §2, related work): the paper contrasts user-driven
// *blind* redundant requests with metascheduler-style informed placement
// (Subramani et al. choose remote clusters by queue state and "play
// nice"). This harness compares the three placement policies rrsim
// implements — uniform (blind), biased (Table 2), least-loaded
// (informed) — at several redundancy degrees.
//
//   ./ext_informed_placement [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Extension - blind vs informed replica placement",
        "N=10; relative average stretch (vs NONE) per placement policy;\n"
        "least-loaded picks the shortest queues at submission time",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<const char*> schemes{"R2", "R3", "HALF"};
    const std::vector<const char*> placements{"uniform", "biased",
                                              "least-loaded"};
    std::vector<std::vector<core::RelativeMetrics>> grid(
        schemes.size(), std::vector<core::RelativeMetrics>(placements.size()));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      for (std::size_t j = 0; j < placements.size(); ++j) {
        core::ExperimentConfig c = base;
        c.scheme = core::RedundancyScheme::parse(schemes[i]);
        c.placement = placements[j];
        sweep.add_relative(c, [&grid, i, j](const core::RelativeMetrics& m) {
          grid[i][j] = m;
        });
      }
    }
    sweep.run();

    util::Table table({"scheme", "uniform (blind)", "biased",
                       "least-loaded (informed)"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      table.begin_row().add(schemes[i]);
      for (std::size_t j = 0; j < placements.size(); ++j) {
        table.add(grid[i][j].rel_avg_stretch, 3);
      }
    }
    table.print(std::cout);
    std::printf("\ninformed placement extracts most of the benefit with "
                "fewer replicas\n(R2 informed vs HALF blind), i.e. a "
                "metascheduler needs less redundancy\n");
    bench::sweep_summary(sweep.jobs());
  });
}
