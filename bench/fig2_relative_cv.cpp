// Figure 2: coefficient of variation of stretches (the paper's fairness
// metric) for each redundancy scheme relative to no redundancy, versus
// the number of clusters. The paper reports 0.75-0.9 across the board and
// notes the max-stretch fairness metric improves even more (10-60%); we
// print both columns (see EXPERIMENTS.md for the regime discussion).
//
//   ./fig2_relative_cv [--reps=3|--full] [--hours=6] [--seed=42] + common.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 2 - relative CV of stretches (fairness) vs cluster count",
        "values < 1: redundant requests make the schedule fairer; columns\n"
        "'cv' = relative CV of stretches, 'max' = relative max stretch",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<std::size_t> ns{2, 3, 4, 5, 10, 20};
    const std::vector<std::string> schemes{"R2", "R4", "HALF", "ALL"};

    std::vector<std::vector<core::RelativeMetrics>> grid(
        ns.size(), std::vector<core::RelativeMetrics>(schemes.size()));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        core::ExperimentConfig c = base;
        c.n_clusters = ns[i];
        c.scheme = core::RedundancyScheme::parse(schemes[j]);
        sweep.add_relative(c, [&grid, i, j](const core::RelativeMetrics& m) {
          grid[i][j] = m;
        });
      }
    }
    sweep.run();

    util::Table table({"N", "R2 cv", "R2 max", "R4 cv", "R4 max", "HALF cv",
                       "HALF max", "ALL cv", "ALL max"});
    for (std::size_t i = 0; i < ns.size(); ++i) {
      table.begin_row().add(static_cast<long long>(ns[i]));
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        table.add(grid[i][j].rel_cv_stretch, 3)
            .add(grid[i][j].rel_max_stretch, 3);
      }
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
  });
}
