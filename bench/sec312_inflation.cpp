// Section 3.1.2 ablation: redundant replicas on remote clusters request
// extra compute time (to cover late-bound input staging). The paper
// inflated remote requested times by 10% and 50% and "interestingly
// observed no difference". This harness repeats that ablation.
//
//   ./sec312_inflation [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"
#include "rrsim/util/stats.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 6);
    bench::banner(
        "Section 3.1.2 - remote requested-time inflation ablation",
        "HALF scheme, N=10; the paper found +10%/+50% inflation changes\n"
        "nothing about the relative results",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);
    base.scheme = core::RedundancyScheme::half();

    const std::vector<double> inflations{1.0, 1.1, 1.5};
    std::vector<core::RelativeMetrics> results(inflations.size());
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < inflations.size(); ++i) {
      core::ExperimentConfig c = base;
      c.remote_inflation = inflations[i];
      sweep.add_relative(c, [&results, i](const core::RelativeMetrics& m) {
        results[i] = m;
      });
    }
    sweep.run();

    util::Table table({"remote inflation", "rel avg stretch",
                       "per-rep stddev", "rel CV", "rel max stretch",
                       "win rate %"});
    for (std::size_t i = 0; i < inflations.size(); ++i) {
      const core::RelativeMetrics& rel = results[i];
      const util::Summary spread = util::summarize(rel.per_rep_rel_stretch);
      table.begin_row()
          .add("x" + util::format_fixed(inflations[i], 2))
          .add(rel.rel_avg_stretch, 3)
          .add(spread.stddev, 3)
          .add(rel.rel_cv_stretch, 3)
          .add(rel.rel_max_stretch, 3)
          .add(rel.win_rate * 100.0, 0);
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
    std::printf(
        "\nthe sign never flips: redundancy stays beneficial under "
        "inflation.\nIn this regime inflation further *improves* the "
        "redundant schemes —\nthe classic effect of conservative estimates "
        "creating slack that\nbackfilling exploits; the paper's heavier "
        "regime showed no difference.\n");
  });
}
