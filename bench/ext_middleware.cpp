// Extension (paper §4.2, made dynamic): route every submission and
// cancellation through per-cluster middleware stations with a finite
// service rate (GT4 WS-GRAM sustains ~1 op/s) and watch the bottleneck
// appear as redundancy grows. The paper derives r < 3 analytically from
// r/iat <= 0.5; here the same threshold emerges in simulation as a
// diverging middleware backlog and ballooning delivery latency.
//
//   ./ext_middleware [--rate=1.0] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const double rate = cli.get_double("rate", 1.0);
    std::printf("=== Extension - middleware saturation under redundancy "
                "===\n");
    std::printf("N=10 shared-peak; middleware %.2f ops/s per cluster; the\n"
                "analytic bound (paper section 4.2) predicts saturation "
                "once each\ncluster's operation rate r/iat exceeds the "
                "service rate\n\n", rate);

    core::ExperimentConfig base = core::figure_config();
    base.submit_horizon = 2.0 * 3600.0;
    base = core::apply_common_flags(base, cli);
    base.middleware_ops_per_sec = rate;
    if (cli.has("mw-rate")) {
      base.middleware_ops_per_sec = cli.get_double("mw-rate", rate);
    }

    // Offered middleware load per cluster: every job lands r replicas
    // spread over N clusters plus up to r-1 cancellations.
    const double cluster_iat =
        base.base_workload.mean_interarrival() *
        static_cast<double>(base.n_clusters);

    const std::vector<const char*> schemes{"NONE", "R2", "R4", "HALF",
                                           "ALL"};
    std::vector<core::SimResult> runs(schemes.size());
    core::CampaignSweep sweep(1);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      core::ExperimentConfig c = base;
      c.scheme = core::RedundancyScheme::parse(schemes[i]);
      sweep.runner().add(
          1,
          [c](int) {
            return core::run_experiment(c, core::thread_workspace());
          },
          [&runs, i](int, core::SimResult r) { runs[i] = std::move(r); });
    }
    sweep.run();

    util::Table table({"scheme", "ops offered /s/cluster", "max backlog",
                       "mean op latency (s)", "avg stretch"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const core::SimResult& r = runs[i];
      const auto m = metrics::compute_metrics(r.records);
      const double degree = static_cast<double>(
          core::RedundancyScheme::parse(schemes[i]).degree(base.n_clusters));
      // Each job contributes `degree` submissions + (degree-1) cancels,
      // spread uniformly over the N clusters; arrivals are per system.
      const double offered =
          (2.0 * degree - 1.0) / cluster_iat;
      table.begin_row()
          .add(schemes[i])
          .add(offered, 3)
          .add(r.middleware_max_backlog, 0)
          .add(r.middleware_mean_sojourn, 1)
          .add(m.avg_stretch, 1);
    }
    table.print(std::cout);
    std::printf("\nbacklog/latency stay flat while offered < %.2f ops/s and "
                "blow up past it\n", rate);
    bench::sweep_summary(sweep.jobs());
  });
}
