// Figure 3: relative average stretch versus the mean job inter-arrival
// time, N = 10 clusters. The paper sweeps the gamma shape alpha from 4 to
// 20 (mean inter-arrival ~2-10 s of the system-wide model rate) and finds
// redundancy beneficial across the whole range. We sweep the same alpha
// values (scaled onto the shared-load regime's base rate; see DESIGN.md).
//
//   ./fig3_interarrival [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 3 - relative average stretch vs job inter-arrival time",
        "N=10 clusters; values < 1 mean redundancy helps at that load; the\n"
        "paper finds improvement across the whole sweep",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    // The paper varies alpha in [4, 20] with beta fixed, i.e. the mean
    // inter-arrival spans [0.4, 2.0] x the base mean. We apply the same
    // relative sweep to the figure regime's base rate.
    const std::vector<double> alphas{4.0, 6.0, 10.23, 15.0, 20.0};
    const double base_mean = base.base_workload.mean_interarrival();

    const std::vector<std::string> schemes{"R2", "R3", "R4", "HALF", "ALL"};
    std::vector<std::vector<core::RelativeMetrics>> grid(
        alphas.size(), std::vector<core::RelativeMetrics>(schemes.size()));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      const double mean_iat = base_mean * alphas[i] / 10.23;
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        core::ExperimentConfig c = base;
        c.base_workload.arrival_alpha = alphas[i];
        c.base_workload = c.base_workload.with_mean_interarrival(mean_iat);
        c.scheme = core::RedundancyScheme::parse(schemes[j]);
        sweep.add_relative(c, [&grid, i, j](const core::RelativeMetrics& m) {
          grid[i][j] = m;
        });
      }
    }
    sweep.run();

    util::Table table({"alpha", "mean iat (s, system)", "R2", "R3", "R4",
                       "HALF", "ALL"});
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      table.begin_row().add(alphas[i], 2).add(base_mean * alphas[i] / 10.23,
                                              2);
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        table.add(grid[i][j].rel_avg_stretch, 3);
      }
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
  });
}
