// Campaign/kernel throughput benchmark and perf record.
//
// Measures (1) DES kernel event throughput — both the current pooled-slab
// kernel and an in-file replica of the pre-pool design (one
// std::shared_ptr<State> per event) so the event-pool win stays visible in
// the record — and (2) wall-clock of a relative campaign at --jobs 1
// versus --jobs N, which bounds every figure/table harness in bench/.
// Writes the results to BENCH_campaign.json so future PRs have a perf
// trajectory to compare against.
//
//   ./micro_campaign [--reps=16] [--jobs=8] [--events=2000000]
//                    [--out=BENCH_campaign.json] plus common flags.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "rrsim/des/simulation.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Legacy kernel replica: a faithful copy of the seed tree's
// des::Simulation hot path, which allocated one shared_ptr<State> control
// block per event. Validation, priority tie-breaking, live-event
// accounting and the returned handle all mirror the original so the
// comparison isolates the event-state representation.
class LegacySharedPtrKernel {
 public:
  struct State {
    std::function<void()> callback;
    bool cancelled = false;
    bool fired = false;
    std::size_t* live = nullptr;
  };
  struct Entry {
    double time;
    int priority;
    std::uint64_t seq;
    std::shared_ptr<State> state;
  };
  struct Compare {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  double now = 0.0;

  std::shared_ptr<State> schedule(double t, std::function<void()> cb,
                                  int prio = 3) {
    if (!(t >= now) || !std::isfinite(t)) {
      throw std::invalid_argument("schedule: time must be finite and >= now");
    }
    if (!cb) throw std::invalid_argument("schedule: empty callback");
    auto state = std::make_shared<State>();
    state->callback = std::move(cb);
    state->live = &live_;
    queue_.push(Entry{t, prio, next_seq_++, state});
    ++live_;
    return state;  // the original returned an EventHandle wrapping this
  }

  std::uint64_t run() {
    std::uint64_t dispatched = 0;
    while (!queue_.empty()) {
      Entry e = queue_.top();
      queue_.pop();
      if (e.state->cancelled) continue;
      now = e.time;
      e.state->fired = true;
      if (live_ > 0) --live_;
      auto cb = std::move(e.state->callback);
      cb();
      ++dispatched;
    }
    return dispatched;
  }

 private:
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Compare> queue_;
};

// Both kernels are measured under the simulator's real access pattern:
// a bounded set of live events (kLiveEvents) where every dispatch
// schedules a replacement — steady-state churn that recycles pool slots
// (and, in the legacy design, allocates a fresh control block per event).
constexpr std::size_t kLiveEvents = 1024;

// Cheap deterministic jitter so the heap sees varied orderings.
struct Jitter {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  double next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) * 0x1.0p-24 + 1e-3;
  }
};

// The `[this]` captures below fit std::function's small-buffer storage,
// so the callback itself never allocates — the measured difference is
// purely the event-state bookkeeping (pooled slot vs. shared_ptr).
struct PooledChurn {
  des::Simulation sim;
  Jitter jitter;
  std::uint64_t remaining = 0;
  void tick() {
    if (remaining == 0) return;
    --remaining;
    sim.schedule_in(jitter.next(), [this] { tick(); });
  }
};

double pooled_kernel_events_per_sec(std::size_t events) {
  const auto start = Clock::now();
  PooledChurn churn;
  churn.remaining = events;
  for (std::size_t i = 0; i < kLiveEvents && churn.remaining > 0; ++i) {
    churn.tick();
  }
  churn.sim.run();
  const double elapsed = seconds_since(start);
  return static_cast<double>(churn.sim.dispatched()) / elapsed;
}

struct LegacyChurn {
  LegacySharedPtrKernel kernel;
  Jitter jitter;
  std::uint64_t remaining = 0;
  void tick() {
    if (remaining == 0) return;
    --remaining;
    kernel.schedule(kernel.now + jitter.next(), [this] { tick(); });
  }
};

double legacy_kernel_events_per_sec(std::size_t events) {
  const auto start = Clock::now();
  LegacyChurn churn;
  churn.remaining = events;
  for (std::size_t i = 0; i < kLiveEvents && churn.remaining > 0; ++i) {
    churn.tick();
  }
  const std::uint64_t dispatched = churn.kernel.run();
  const double elapsed = seconds_since(start);
  return static_cast<double>(dispatched) / elapsed;
}

// On a loaded single-core box a one-shot kernel timing swings by +/-40%
// run to run (the 0.91x "regression" recorded by an earlier BENCH run was
// exactly such an outlier: interleaved re-measurement never reproduced a
// pooled loss). Each kernel therefore gets a short warmup and the two
// kernels are timed in alternation; the recorded figure is the best of
// `kKernelSamples` so transient preemption inflates neither side.
constexpr int kKernelSamples = 3;

struct KernelTimings {
  double legacy = 0.0;
  double pooled = 0.0;
};

KernelTimings measure_kernels(std::size_t events) {
  const std::size_t warmup = std::min<std::size_t>(events / 8, 100000);
  legacy_kernel_events_per_sec(warmup);
  pooled_kernel_events_per_sec(warmup);
  KernelTimings best;
  for (int i = 0; i < kKernelSamples; ++i) {
    best.legacy = std::max(best.legacy, legacy_kernel_events_per_sec(events));
    best.pooled = std::max(best.pooled, pooled_kernel_events_per_sec(events));
  }
  return best;
}

core::ExperimentConfig campaign_config(const util::Cli& cli) {
  core::ExperimentConfig c =
      core::apply_common_flags(core::figure_config_quick(), cli);
  if (!cli.has("clusters")) c.n_clusters = 4;
  if (!cli.has("hours")) c.submit_horizon = 0.5 * 3600.0;
  if (c.scheme.is_none()) c.scheme = core::RedundancyScheme::half();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = rrsim::bench::repetitions(cli, 16);
    const int jobs = exec::default_jobs();
    const auto events =
        static_cast<std::size_t>(cli.get_int("events", 2000000));
    const std::string out_path =
        cli.get_string("out", "BENCH_campaign.json");
    rrsim::bench::banner(
        "micro_campaign - campaign and kernel throughput",
        "wall-clock of a paired relative campaign at --jobs 1 vs --jobs N,\n"
        "plus DES kernel events/sec (pooled slab vs legacy shared_ptr)",
        reps);

    std::printf(
        "kernel event throughput (%zu events, best of %d, single thread):\n",
        events, kKernelSamples);
    const KernelTimings kernels = measure_kernels(events);
    const double legacy_eps = kernels.legacy;
    const double pooled_eps = kernels.pooled;
    std::printf("  legacy shared_ptr kernel : %12.0f events/s\n", legacy_eps);
    std::printf("  pooled slab kernel       : %12.0f events/s  (%.2fx)\n\n",
                pooled_eps, pooled_eps / legacy_eps);

    const core::ExperimentConfig config = campaign_config(cli);
    std::printf("campaign: %zu clusters, scheme %s, %d reps\n",
                config.n_clusters, config.scheme.name().c_str(), reps);

    auto start = Clock::now();
    const core::RelativeMetrics serial =
        core::run_relative_campaign(config, reps, 1);
    const double serial_s = seconds_since(start);
    std::printf("  --jobs 1  : %8.2f s  (rel stretch %.3f)\n", serial_s,
                serial.rel_avg_stretch);

    start = Clock::now();
    const core::RelativeMetrics parallel =
        core::run_relative_campaign(config, reps, jobs);
    const double parallel_s = seconds_since(start);
    const double speedup = serial_s / parallel_s;
    std::printf("  --jobs %-2d : %8.2f s  (rel stretch %.3f)  speedup %.2fx\n",
                jobs, parallel_s, parallel.rel_avg_stretch, speedup);
    if (serial.rel_avg_stretch != parallel.rel_avg_stretch) {
      throw std::runtime_error(
          "determinism violation: --jobs 1 and --jobs N disagree");
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot write " + out_path);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"micro_campaign\",\n");
    bench::write_json_env_fields(f, jobs);
    std::fprintf(f,
                 "  \"kernel_events\": %zu,\n"
                 "  \"kernel_samples_best_of\": %d,\n"
                 "  \"kernel_events_per_sec_legacy_shared_ptr\": %.0f,\n"
                 "  \"kernel_events_per_sec_pooled\": %.0f,\n"
                 "  \"kernel_speedup\": %.4f,\n"
                 "  \"campaign_reps\": %d,\n"
                 "  \"campaign_clusters\": %zu,\n"
                 "  \"campaign_scheme\": \"%s\",\n"
                 "  \"campaign_seconds_jobs1\": %.4f,\n"
                 "  \"campaign_jobs\": %d,\n"
                 "  \"campaign_seconds_jobsN\": %.4f,\n"
                 "  \"campaign_speedup\": %.4f,\n"
                 "  \"deterministic_across_jobs\": true\n"
                 "}\n",
                 events, kKernelSamples, legacy_eps, pooled_eps,
                 pooled_eps / legacy_eps,
                 reps, config.n_clusters, config.scheme.name().c_str(),
                 serial_s, jobs, parallel_s, speedup);
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
