// Table 2: relative average stretch and CV when redundant requests pick
// remote clusters with a heavily biased distribution — cluster C1 twice
// as likely as C2, which is twice as likely as C3, and so on (half the
// clusters are each picked with only ~6% probability). Paper: still
// beneficial (0.88-0.95 stretch, 0.86-0.94 CV), similar to uniform.
//
//   ./table2_biased_placement [--reps=3|--full] [--seed=42] + common.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Table 2 - non-uniformly distributed redundant requests",
        "N=10, geometrically biased remote-cluster choice; values < 1 mean\n"
        "redundancy is beneficial despite the bias (paper: 0.86-0.95)",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);
    base.placement = "biased";

    const std::vector<std::string> schemes{"R2", "R3", "R4", "HALF"};
    std::vector<core::RelativeMetrics> results(schemes.size());
    core::CampaignSweep sweep(reps);
    for (std::size_t j = 0; j < schemes.size(); ++j) {
      core::ExperimentConfig c = base;
      c.scheme = core::RedundancyScheme::parse(schemes[j]);
      sweep.add_relative(c, [&results, j](const core::RelativeMetrics& m) {
        results[j] = m;
      });
    }
    sweep.run();

    util::Table table({"metric", "R2", "R3", "R4", "HALF"});
    table.begin_row().add("Relative Average Stretch");
    for (const core::RelativeMetrics& m : results) {
      table.add(m.rel_avg_stretch, 2);
    }
    table.begin_row().add("Relative C.V. of Stretches");
    for (const core::RelativeMetrics& m : results) {
      table.add(m.rel_cv_stretch, 2);
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
  });
}
