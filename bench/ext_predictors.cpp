// Extension (paper §5 future work): the paper ends Section 5 asking what
// redundant requests do to *statistical* wait-time predictors such as the
// Binomial Method Batch Predictor of its reference [2] — "we will explore
// this intriguing issue in future work". This harness does the
// experiment: BMBP quantile upper bounds are trained online from each
// cluster's observed waits and evaluated on later jobs, with and without
// redundancy in the system.
//
//   ./ext_predictors [--quantile=0.95] [--confidence=0.95] [--seed=42]
//                    + common flags.

#include <algorithm>
#include <array>
#include <queue>

#include "bench_common.h"
#include "rrsim/forecast/bmbp.h"
#include "rrsim/util/stats.h"

namespace {

using namespace rrsim;

struct Evaluation {
  std::size_t evaluated = 0;  ///< jobs with a bound available
  std::size_t covered = 0;    ///< actual wait <= bound
  util::OnlineStats tightness;  ///< bound / actual, waits >= 60 s

  double coverage() const {
    return evaluated ? static_cast<double>(covered) /
                           static_cast<double>(evaluated)
                     : 0.0;
  }
};

/// Replays the records in submission order, feeding each cluster's
/// predictor with the waits of jobs that started there before the
/// evaluated job was submitted (what an online forecaster would have
/// seen), and scores the bound against the job's real wait.
std::array<Evaluation, 2> evaluate_bmbp(const metrics::JobRecords& records,
                                        std::size_t n_clusters, double q,
                                        double c) {
  std::vector<metrics::JobRecord> by_submit(records.begin(), records.end());
  std::sort(by_submit.begin(), by_submit.end(),
            [](const auto& a, const auto& b) {
              return a.submit_time < b.submit_time;
            });
  std::vector<forecast::BmbpPredictor> predictors(
      n_clusters, forecast::BmbpPredictor(q, c, 512));
  // Waits become observable when the job starts; deliver them in start
  // order as the submit-ordered scan advances.
  using StartEvent = std::pair<double, const metrics::JobRecord*>;
  std::priority_queue<StartEvent, std::vector<StartEvent>, std::greater<>>
      starts;
  for (const auto& rec : by_submit) starts.emplace(rec.start_time, &rec);

  std::array<Evaluation, 2> eval;  // [0] = n-r jobs, [1] = r jobs
  for (const auto& rec : by_submit) {
    while (!starts.empty() && starts.top().first <= rec.submit_time) {
      const metrics::JobRecord* done = starts.top().second;
      starts.pop();
      predictors[done->winner_cluster].observe(done->wait_time());
    }
    const auto bound = predictors[rec.origin_cluster].upper_bound();
    if (!bound) continue;
    Evaluation& e = eval[rec.redundant ? 1 : 0];
    ++e.evaluated;
    if (rec.wait_time() <= *bound) ++e.covered;
    if (rec.wait_time() >= 60.0) {
      e.tightness.add(*bound / rec.wait_time());
    }
  }
  return eval;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const double q = cli.get_double("quantile", 0.95);
    const double c = cli.get_double("confidence", 0.95);
    std::printf("=== Extension - statistical (BMBP) wait predictors under "
                "redundancy ===\n");
    std::printf("N=10; per-cluster BMBP upper bound on the %.0f%%-quantile "
                "of waits at\n%.0f%% confidence, trained online; 'coverage' "
                "should be >= %.0f%% when\nthe predictor works\n\n",
                q * 100.0, c * 100.0, q * 100.0);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    struct Scenario {
      const char* label;
      double fraction;
    };
    const std::vector<Scenario> scenarios{{"no redundancy", 0.0},
                                          {"40% ALL", 0.4},
                                          {"100% ALL", 1.0}};
    std::vector<core::SimResult> runs(scenarios.size());
    core::CampaignSweep sweep(1);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      core::ExperimentConfig cfg = base;
      cfg.scheme = core::RedundancyScheme::all();
      cfg.redundant_fraction = scenarios[i].fraction;
      sweep.runner().add(
          1,
          [cfg](int) {
            return core::run_experiment(cfg, core::thread_workspace());
          },
          [&runs, i](int, core::SimResult r) { runs[i] = std::move(r); });
    }
    sweep.run();

    util::Table table({"population", "class", "jobs", "coverage %",
                       "median-ish tightness (x actual)"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto eval =
          evaluate_bmbp(runs[i].records, base.n_clusters, q, c);
      const char* class_names[2] = {"n-r jobs", "r jobs"};
      for (int k = 0; k < 2; ++k) {
        if (eval[static_cast<std::size_t>(k)].evaluated == 0) continue;
        const Evaluation& e = eval[static_cast<std::size_t>(k)];
        table.begin_row()
            .add(scenarios[i].label)
            .add(class_names[k])
            .add(static_cast<long long>(e.evaluated))
            .add(e.coverage() * 100.0, 1)
            .add(e.tightness.mean(), 1);
      }
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
    std::printf(
        "\nreading: redundancy keeps BMBP coverage healthy for the jobs "
        "that use\nit (their waits shrink below the learned bound) while "
        "churn makes the\nbounds looser; the paper conjectured statistical "
        "predictors are the\nmore robust alternative to queue-based ones — "
        "this measures it.\n");
  });
}
