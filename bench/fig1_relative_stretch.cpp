// Figure 1: average stretch of each redundant-request scheme relative to
// no redundancy, versus the number of clusters N in {2,3,4,5,10,20}.
// Paper's shape: redundancy is not beneficial for N <= 5 (up to ~10%
// worse) and beneficial for N > 5 (15-25% better), with higher redundancy
// degrees at least as good at large N. Also reports the win-rate rows the
// paper quotes in prose ("beneficial in >85/90/95% of experiments").
//
//   ./fig1_relative_stretch [--reps=3|--full] [--hours=6] [--algo=easy]
//                           [--seed=42] [--jobs=N] plus common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 1 - relative average stretch vs number of clusters",
        "values < 1: redundant requests improve the average stretch; the\n"
        "paper finds >1 for N<=5 and 0.75-0.95 for N>5",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<std::size_t> ns{2, 3, 4, 5, 10, 20};
    const std::vector<std::string> schemes{"R2", "R3", "R4", "HALF", "ALL"};

    // One sweep: every (N, scheme) point queued up front, all
    // (point x replication) units scheduled across one worker pool.
    std::vector<std::vector<core::RelativeMetrics>> grid(
        ns.size(), std::vector<core::RelativeMetrics>(schemes.size()));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        core::ExperimentConfig c = base;
        c.n_clusters = ns[i];
        c.scheme = core::RedundancyScheme::parse(schemes[j]);
        sweep.add_relative(c, [&grid, i, j](const core::RelativeMetrics& m) {
          grid[i][j] = m;
        });
      }
    }
    sweep.run();

    util::Table table({"N", "R2", "R3", "R4", "HALF", "ALL"});
    util::Table wins({"N", "scheme", "win rate %", "worst ratio"});
    for (std::size_t i = 0; i < ns.size(); ++i) {
      table.begin_row().add(static_cast<long long>(ns[i]));
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        const core::RelativeMetrics& rel = grid[i][j];
        table.add(rel.rel_avg_stretch, 3);
        if (ns[i] >= 10) {
          wins.begin_row()
              .add(static_cast<long long>(ns[i]))
              .add(schemes[j])
              .add(rel.win_rate * 100.0, 0)
              .add(rel.worst_rel_stretch, 3);
        }
      }
    }
    table.print(std::cout);
    std::printf("\nWin rates over the NONE baseline (paper: >85%% for N=10, "
                ">95%% for N=20):\n");
    wins.print(std::cout, false);
    bench::sweep_summary(sweep.jobs());
  });
}
