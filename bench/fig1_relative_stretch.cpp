// Figure 1: average stretch of each redundant-request scheme relative to
// no redundancy, versus the number of clusters N in {2,3,4,5,10,20}.
// Paper's shape: redundancy is not beneficial for N <= 5 (up to ~10%
// worse) and beneficial for N > 5 (15-25% better), with higher redundancy
// degrees at least as good at large N. Also reports the win-rate rows the
// paper quotes in prose ("beneficial in >85/90/95% of experiments").
//
//   ./fig1_relative_stretch [--reps=3|--full] [--hours=6] [--algo=easy]
//                           [--seed=42] [--jobs=N] plus common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 1 - relative average stretch vs number of clusters",
        "values < 1: redundant requests improve the average stretch; the\n"
        "paper finds >1 for N<=5 and 0.75-0.95 for N>5",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<std::size_t> ns{2, 3, 4, 5, 10, 20};
    const std::vector<std::string> schemes{"R2", "R3", "R4", "HALF", "ALL"};

    util::Table table({"N", "R2", "R3", "R4", "HALF", "ALL"});
    util::Table wins({"N", "scheme", "win rate %", "worst ratio"});
    for (const std::size_t n : ns) {
      table.begin_row().add(static_cast<long long>(n));
      for (const std::string& scheme : schemes) {
        core::ExperimentConfig c = base;
        c.n_clusters = n;
        c.scheme = core::RedundancyScheme::parse(scheme);
        const core::RelativeMetrics rel =
            core::run_relative_campaign(c, reps);
        table.add(rel.rel_avg_stretch, 3);
        if (n >= 10) {
          wins.begin_row()
              .add(static_cast<long long>(n))
              .add(scheme)
              .add(rel.win_rate * 100.0, 0)
              .add(rel.worst_rel_stretch, 3);
        }
        std::fflush(stdout);
      }
    }
    table.print(std::cout);
    std::printf("\nWin rates over the NONE baseline (paper: >85%% for N=10, "
                ">95%% for N=20):\n");
    wins.print(std::cout, false);
  });
}
