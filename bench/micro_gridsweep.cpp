// Grid-scale sweep benchmark and perf record: cache-affine point
// scheduling over a real multi-point figure at 10^3 clusters.
//
// One CampaignSweep carries 8 sweep points — {R2, R4} x redundant
// fraction {0.25, 0.5, 0.75, 1.0} — over the same calibrated windowed
// workload (10^3 clusters x 128 nodes, ~10^6 jobs per point), all in ONE
// process. Every point shares one core::trace_affinity, so the runner
// executes the first-queued point as the cold leader (it generates the
// shared checkpoint tables and draw segments) and the remaining seven
// warm, straight out of the TraceCache.
//
// Guards asserted in-harness (a violation aborts, it is not a number in
// a JSON):
//   - the per-point result checksum is identical across --jobs 1/2/8
//     AND the cold baseline (cache-affine scheduling is scheduling
//     only, and the cache is bit-transparent);
//   - every sweep reports nonzero checkpoint AND draw-segment hits
//     (the sharing actually happened).
//
// Cold vs warm is a MATCHED comparison: simulation cost grows ~2x with
// the redundant fraction across these points, so comparing the leader's
// elapsed against other points' would confound treatment cost with
// cache state. Instead a baseline pass first runs every point with the
// cache cleared before it (all cold), and the record compares each
// follower's warm time in the affine sweep against the same point's
// cold-baseline time. Timing ratios are recorded, not asserted — the
// ctest smoke runs at toy scale where they are pure noise.
//
//   ./micro_gridsweep [--clusters=1000] [--hours=11] [--window=256]
//                     [--assert-rss-mb=0] [--out=BENCH_gridsweep.json]

#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rrsim/core/experiment.h"
#include "rrsim/core/sweep.h"
#include "rrsim/metrics/summary.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

struct SweepPoint {
  int degree;
  double fraction;
};

constexpr std::array<SweepPoint, 8> kPoints{
    SweepPoint{2, 0.25}, SweepPoint{2, 0.5}, SweepPoint{2, 0.75},
    SweepPoint{2, 1.0},  SweepPoint{4, 0.25}, SweepPoint{4, 0.5},
    SweepPoint{4, 0.75}, SweepPoint{4, 1.0}};

/// One figure point: calibrated windowed streaming workload, identical
/// trace inputs for every point (only the treatment knobs vary, which
/// trace_affinity ignores — that is the sharing under test).
core::ExperimentConfig point_config(std::size_t clusters, double hours,
                                    std::size_t window,
                                    const SweepPoint& p) {
  core::ExperimentConfig c;
  c.n_clusters = clusters;
  c.nodes_per_cluster = 128;
  c.load_mode = core::LoadMode::kCalibrated;
  c.target_utilization = 0.7;
  c.submit_horizon = hours * 3600.0;
  c.scheme = core::RedundancyScheme::fixed(p.degree);
  c.redundant_fraction = p.fraction;
  c.retain_records = false;
  c.stream_window = window;
  c.seed = 1;
  return c;
}

struct PointRun {
  double elapsed = 0.0;
  std::uint64_t jobs = 0;
  double avg_stretch = 0.0;
  double cv_stretch = 0.0;
  double max_stretch = 0.0;
  double avg_turnaround = 0.0;
  double end_time = 0.0;
};

struct SweepRun {
  double total_seconds = 0.0;
  std::vector<PointRun> points;
  core::SweepCacheStats cache;
  std::uint64_t checksum = 0;
};

/// FNV-style digest over every per-point result double (exact bits) and
/// job count, in point order: the cross---jobs equivalence oracle.
std::uint64_t results_checksum(const std::vector<PointRun>& points) {
  std::uint64_t checksum = 1469598103934665603ULL;
  const auto mix = [&checksum](std::uint64_t v) {
    checksum = (checksum * 6364136223846793005ULL) ^ v;
  };
  const auto bits = [](double d) {
    std::uint64_t v = 0;
    std::memcpy(&v, &d, sizeof v);
    return v;
  };
  for (const PointRun& p : points) {
    mix(p.jobs);
    mix(bits(p.avg_stretch));
    mix(bits(p.cv_stretch));
    mix(bits(p.max_stretch));
    mix(bits(p.avg_turnaround));
    mix(bits(p.end_time));
  }
  return checksum;
}

PointRun run_point(const core::ExperimentConfig& config) {
  const auto start = Clock::now();
  const core::SimResult r =
      core::run_experiment(config, core::thread_workspace());
  PointRun p;
  p.elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  p.jobs = r.jobs_generated;
  const metrics::ScheduleMetrics m = r.stream.metrics();
  p.avg_stretch = m.avg_stretch;
  p.cv_stretch = m.cv_stretch_percent;
  p.max_stretch = m.max_stretch;
  p.avg_turnaround = m.avg_turnaround;
  p.end_time = r.end_time;
  return p;
}

/// The matched cold reference: every point pays full trace generation
/// (checkpoint scan + draw-segment fast-forward) because the cache is
/// cleared before each one. Same configs, same serial order, no sweep
/// machinery in the timing path beyond what the affine sweep's map
/// lambda runs.
std::vector<PointRun> run_cold_baseline(std::size_t clusters, double hours,
                                        std::size_t window) {
  std::vector<PointRun> points;
  points.reserve(kPoints.size());
  for (const SweepPoint& sp : kPoints) {
    workload::TraceCache::global().clear();
    points.push_back(run_point(point_config(clusters, hours, window, sp)));
  }
  return points;
}

SweepRun run_sweep(std::size_t clusters, double hours, std::size_t window,
                   int jobs) {
  // Each sweep starts against an empty cache so its counters (and the
  // jobs=1 sweep's cold-leader timing) describe this sweep alone, not
  // leftovers from the previous --jobs value.
  workload::TraceCache::global().clear();
  core::CampaignSweep sweep(1, jobs);
  SweepRun out;
  out.points.resize(kPoints.size());
  for (std::size_t i = 0; i < kPoints.size(); ++i) {
    const core::ExperimentConfig config =
        point_config(clusters, hours, window, kPoints[i]);
    sweep.runner().add_affine(
        1, core::trace_affinity(config),
        [config](int) { return run_point(config); },
        [&out, i](int, PointRun p) { out.points[i] = p; });
  }
  const auto start = Clock::now();
  sweep.run();
  out.total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.cache = sweep.last_cache_stats();
  out.checksum = results_checksum(out.points);

  // In-harness guards, not record fields: the sharing must actually have
  // happened, whatever the scale.
  if (out.cache.checkpoint_hits == 0 || out.cache.draw_hits == 0) {
    throw std::runtime_error(
        "cache-affinity violation: sweep at --jobs=" + std::to_string(jobs) +
        " saw no checkpoint or draw-segment hits (checkpoint_hits=" +
        std::to_string(out.cache.checkpoint_hits) +
        " draw_hits=" + std::to_string(out.cache.draw_hits) + ")");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    (void)rrsim::bench::repetitions(cli, 1);  // consumes --jobs/env budget
    const auto clusters =
        static_cast<std::size_t>(cli.get_int("clusters", 1000));
    const double hours = cli.get_double("hours", 11.0);
    const auto window =
        static_cast<std::size_t>(cli.get_int("window", 256));
    const std::string out_path =
        cli.get_string("out", "BENCH_gridsweep.json");
    if (clusters < 1 || hours <= 0.0 || window < 1) {
      throw std::invalid_argument(
          "--clusters and --window must be >= 1, --hours > 0");
    }

    std::printf("=== micro_gridsweep - cache-affine grid-scale sweeps "
                "===\n");
    std::printf(
        "%zu points ({R2,R4} x fraction {.25,.5,.75,1}) x %zu clusters, "
        "windowed (W=%zu), one process;\nper-point results must be "
        "bit-identical across --jobs 1/2/8 (checksum-enforced)\n\n",
        kPoints.size(), clusters, window);

    std::printf("cold baseline (cache cleared before every point):\n");
    const std::vector<PointRun> cold = run_cold_baseline(clusters, hours,
                                                         window);
    const std::uint64_t cold_checksum = results_checksum(cold);
    double cold_total = 0.0;
    for (const PointRun& p : cold) cold_total += p.elapsed;
    std::printf("  %7.2fs total | checksum %016llx\n\n", cold_total,
                static_cast<unsigned long long>(cold_checksum));

    constexpr std::array<int, 3> kJobs{1, 2, 8};
    std::vector<SweepRun> sweeps;
    for (const int jobs : kJobs) {
      SweepRun run = run_sweep(clusters, hours, window, jobs);
      std::printf("jobs=%d: %7.2fs total | ckpt %" PRIu64 "h/%" PRIu64
                  "m draw %" PRIu64 "h/%" PRIu64 "m | checksum %016llx\n",
                  jobs, run.total_seconds, run.cache.checkpoint_hits,
                  run.cache.checkpoint_misses, run.cache.draw_hits,
                  run.cache.draw_misses,
                  static_cast<unsigned long long>(run.checksum));
      if (run.checksum != cold_checksum) {
        throw std::runtime_error(
            "determinism violation: sweep results at --jobs=" +
            std::to_string(jobs) +
            " diverged from the cold-baseline reference");
      }
      sweeps.push_back(std::move(run));
    }

    // Matched cold vs warm from the serial sweep (clean per-point
    // timing: no concurrent neighbors). The first-queued point is the
    // affinity group's leader and pays the generation in the sweep too;
    // every follower is compared against ITS OWN cold-baseline time.
    const std::vector<PointRun>& serial = sweeps.front().points;
    double warm_sum = 0.0;
    double cold_follower_sum = 0.0;
    for (std::size_t i = 1; i < serial.size(); ++i) {
      warm_sum += serial[i].elapsed;
      cold_follower_sum += cold[i].elapsed;
    }
    const double n_followers = static_cast<double>(serial.size() - 1);
    const double warm_mean = warm_sum / n_followers;
    const double cold_mean = cold_follower_sum / n_followers;
    std::printf("\nfollower points, matched: cold-baseline mean %.2fs vs "
                "warm (affine sweep) mean %.2fs — %.2fx\n",
                cold_mean, warm_mean, cold_mean / warm_mean);
    std::printf("leader point (cold in both passes): baseline %.2fs, "
                "sweep %.2fs\n", cold.front().elapsed,
                serial.front().elapsed);
    std::printf("jobs per point: %" PRIu64 "\n", serial.front().jobs);

    const std::size_t rss = rrsim::bench::peak_rss_bytes();
    const std::int64_t budget_mb = cli.get_int("assert-rss-mb", 0);
    if (budget_mb > 0 &&
        rss > static_cast<std::size_t>(budget_mb) * 1048576) {
      throw std::runtime_error(
          "peak RSS " + std::to_string(rss / 1048576) +
          " MiB exceeds the --assert-rss-mb=" + std::to_string(budget_mb) +
          " budget");
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("cannot write " + out_path);
    std::fprintf(f, "{\n  \"benchmark\": \"micro_gridsweep\",\n");
    rrsim::bench::write_json_env_fields(
        f, static_cast<int>(kJobs.back()));
    std::fprintf(f,
                 "  \"clusters\": %zu,\n"
                 "  \"nodes_per_cluster\": 128,\n"
                 "  \"utilization\": 0.7,\n"
                 "  \"hours\": %.4f,\n"
                 "  \"stream_window\": %zu,\n"
                 "  \"points\": \"{R2,R4} x fraction {0.25,0.5,0.75,1.0}\","
                 "\n"
                 "  \"jobs_per_point\": %" PRIu64 ",\n"
                 "  \"equivalence_checked\": true,\n"
                 "  \"cold_baseline_point_seconds\": [",
                 clusters, hours, window, serial.front().jobs);
    for (std::size_t i = 0; i < cold.size(); ++i) {
      std::fprintf(f, "%s%.4f", i == 0 ? "" : ", ", cold[i].elapsed);
    }
    std::fprintf(f,
                 "],\n"
                 "  \"cold_follower_mean_seconds\": %.4f,\n"
                 "  \"warm_follower_mean_seconds\": %.4f,\n"
                 "  \"cold_over_warm_matched\": %.4f,\n"
                 "  \"sweeps\": [\n",
                 cold_mean, warm_mean, cold_mean / warm_mean);
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
      const SweepRun& run = sweeps[s];
      std::fprintf(f,
                   "    {\"jobs\": %d, \"total_seconds\": %.4f,\n"
                   "     \"results_checksum\": \"%016llx\",\n"
                   "     \"trace_cache\": {\"checkpoint_hits\": %" PRIu64
                   ", \"checkpoint_misses\": %" PRIu64
                   ", \"draw_hits\": %" PRIu64 ", \"draw_misses\": %" PRIu64
                   ", \"spool_hits\": %" PRIu64 ", \"spool_misses\": %" PRIu64
                   "},\n"
                   "     \"point_seconds\": [",
                   kJobs[s], run.total_seconds,
                   static_cast<unsigned long long>(run.checksum),
                   run.cache.checkpoint_hits, run.cache.checkpoint_misses,
                   run.cache.draw_hits, run.cache.draw_misses,
                   run.cache.spool_hits, run.cache.spool_misses);
      for (std::size_t i = 0; i < run.points.size(); ++i) {
        std::fprintf(f, "%s%.4f", i == 0 ? "" : ", ",
                     run.points[i].elapsed);
      }
      std::fprintf(f, "]}%s\n", s + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
