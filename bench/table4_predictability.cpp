// Table 4: accuracy of reservation-based queue-waiting-time predictions
// (CBF), as the ratio predicted/actual wait, with and without redundant
// requests. Paper (N=10, over-estimated requests): baseline 9.24 average
// over-prediction with CV ~205%; with 40% of jobs using ALL, ~4x worse
// for redundant jobs and ~8x worse for non-redundant jobs. Our regime
// reproduces the baseline magnitude and the dramatic inflation; the
// r-vs-n-r ordering inverts (see EXPERIMENTS.md).
//
//   ./table4_predictability [--reps=3|--full] [--seed=77]
//   (20-minute submission window by default: CBF compression is
//   quadratic in the replica-flooded queue depth.)

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Table 4 - queue waiting time over-estimation statistics",
        "N=10, CBF reservations as predictions, conservative (2.16x mean)\n"
        "requested times; entries are predicted/actual wait ratios",
        reps);

    core::ExperimentConfig base;
    base.n_clusters = 10;
    base.load_mode = core::LoadMode::kPerClusterPeak;
    base.submit_horizon = 1200.0;
    base.algorithm = sched::Algorithm::kCbf;
    base.estimator = "uniform216";
    base.record_predictions = true;
    base.seed = 77;
    base = core::apply_common_flags(base, cli);
    base.algorithm = sched::Algorithm::kCbf;  // Table 4 is CBF by definition

    core::ExperimentConfig mixed = base;
    mixed.scheme = core::RedundancyScheme::all();
    mixed.redundant_fraction = 0.4;

    core::PredictionCampaign baseline;
    core::PredictionCampaign with;
    core::CampaignSweep sweep(reps);
    sweep.add_prediction(
        base, [&baseline](const core::PredictionCampaign& m) {
          baseline = m;
        });
    sweep.add_prediction(mixed, [&with](const core::PredictionCampaign& m) {
      with = m;
    });
    sweep.run();

    util::Table table({"", "0% jobs redundant",
                       "40% ALL: jobs not using RR",
                       "40% ALL: jobs using RR"});
    table.begin_row()
        .add("Average")
        .add(baseline.all.avg_ratio, 2)
        .add(with.non_redundant.avg_ratio, 2)
        .add(with.redundant.avg_ratio, 2);
    table.begin_row()
        .add("C.V.")
        .add(util::format_fixed(baseline.all.cv_ratio_percent, 2) + "%")
        .add(util::format_fixed(with.non_redundant.cv_ratio_percent, 2) + "%")
        .add(util::format_fixed(with.redundant.cv_ratio_percent, 2) + "%");
    table.print(std::cout);
    std::printf("\npaper reference: 9.24 / 77.54 / 36.28 with CVs ~190-205%%\n");
    std::printf("inflation vs baseline: n-r %.1fx, r %.1fx (paper: 8.4x, "
                "3.9x)\n",
                with.non_redundant.avg_ratio / baseline.all.avg_ratio,
                with.redundant.avg_ratio / baseline.all.avg_ratio);
    bench::sweep_summary(sweep.jobs());
  });
}
