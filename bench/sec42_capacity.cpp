// Section 4.1/4.2 capacity analysis: how many redundant requests per job
// the batch scheduler and the grid middleware each sustain, as a function
// of the job inter-arrival time. Paper's conclusions at iat = 5 s:
// scheduler r <= 30 (from 6+6 ops/s at a 10,000-deep queue), GT4 WS-GRAM
// middleware r < 3 — the middleware is the system bottleneck.
//
//   ./sec42_capacity [--queue-depth=10000] [--gram-rate=0.5]

#include "bench_common.h"
#include "rrsim/loadmodel/capacity.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const double depth = cli.get_double("queue-depth", 10000.0);
    const double gram = cli.get_double("gram-rate", 0.5);
    std::printf("=== Section 4 - sustainable redundancy before each layer "
                "saturates ===\n");
    std::printf("scheduler model: Fig 5 calibration evaluated at a "
                "%.0f-deep queue; middleware: %.2f submits/s + %.2f "
                "cancels/s (GT4 WS-GRAM)\n\n",
                depth, gram, gram);

    const loadmodel::ExpDecayModel sched_model =
        loadmodel::ExpDecayModel::paper_calibrated();
    const loadmodel::ServiceRates middleware{gram, gram};

    util::Table table({"mean iat (s)", "scheduler max r", "middleware max r",
                       "system max r", "bottleneck"});
    for (const double iat : {1.0, 2.0, 5.0, 10.0, 30.0, 60.0}) {
      const loadmodel::CapacityReport rep =
          loadmodel::analyze_capacity(sched_model, depth, middleware, iat);
      table.begin_row()
          .add(iat, 0)
          .add(static_cast<long long>(rep.scheduler_max_r))
          .add(static_cast<long long>(rep.middleware_max_r))
          .add(static_cast<long long>(rep.system_max_r))
          .add(rep.middleware_is_bottleneck ? "middleware" : "scheduler");
    }
    table.print(std::cout);
    std::printf("\npaper reference at iat=5 s: scheduler 30, middleware "
                "\"under 3\"\n");
  });
}
