// Scheduler hot-path benchmark and perf record.
//
// Replays one redundancy-heavy synthetic workload — a deep queue where
// most submissions are "losing replicas" cancelled a few seconds later,
// exactly the cancel storm a redundant-request gateway produces — through
// FCFS, EASY, the incremental CBF, and an in-file replica of the
// pre-incremental CBF that rebuilt its availability profile from scratch
// on every cancel. Reports schedule-passes/sec and cancels/sec per
// algorithm, verifies the incremental CBF reproduces the rebuild
// baseline's trace bit-exactly in the same run, and writes the results to
// BENCH_sched.json so future PRs have a perf trajectory to compare
// against.
//
//   ./micro_sched [--submissions=2500] [--nodes=64]
//                 [--out=BENCH_sched.json] plus common flags.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "rrsim/des/simulation.h"
#include "rrsim/sched/cbf.h"
#include "rrsim/sched/easy.h"
#include "rrsim/sched/fcfs.h"
#include "rrsim/sched/profile.h"
#include "rrsim/util/rng.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// Legacy CBF replica: a faithful copy of the seed tree's conservative
// backfilling, which rebuilt the profile from scratch on every cancel and
// early completion, scanned the whole queue per dispatch pass, and swept
// it again to find the next wake-up. Kept in-file (mirroring the oracle
// in tests/sched/cbf_incremental_test.cpp) so the incremental core's win
// stays measurable against the design it replaced.
class LegacyCbf final : public sched::ClusterScheduler {
 public:
  LegacyCbf(des::Simulation& sim, int total_nodes)
      : ClusterScheduler(sim, total_nodes), profile_(total_nodes) {}

  std::string name() const override { return "cbf-rebuild"; }
  std::size_t queue_length() const override { return queue_.size(); }

 protected:
  void handle_submit(sched::Job job) override {
    const sched::Time now = sim_.now();
    const sched::Time s =
        profile_.earliest_start(now, job.nodes, job.requested_time);
    profile_.reserve(s, job.requested_time, job.nodes);
    record_prediction(job.id, s);
    queue_.push_back(Entry{std::move(job), s});
    dispatch_ready();
  }

  sched::Job handle_cancel(sched::JobId id) override {
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [id](const Entry& e) { return e.job.id == id; });
    if (it == queue_.end()) {
      throw std::logic_error("legacy cbf: cancel of non-pending job");
    }
    sched::Job job = it->job;
    queue_.erase(it);
    rebuild_profile();
    dispatch_ready();
    return job;
  }

  void handle_completion(const sched::Job& job) override {
    const bool early = job.finish_time < job.start_time + job.requested_time;
    if (early) rebuild_profile();
    dispatch_ready();
  }

  std::vector<const sched::Job*> pending_in_order() const override {
    std::vector<const sched::Job*> out;
    out.reserve(queue_.size());
    for (const Entry& e : queue_) out.push_back(&e.job);
    return out;
  }

 private:
  struct Entry {
    sched::Job job;
    sched::Time reserved_start = 0.0;
  };

  void rebuild_profile() {
    count_pass();
    const sched::Time now = sim_.now();
    profile_ = sched::Profile(total_nodes());
    for (const auto& [end, nodes] : running_requested_ends()) {
      if (end > now) profile_.reserve(now, end - now, nodes);
    }
    for (Entry& e : queue_) {
      e.reserved_start =
          profile_.earliest_start(now, e.job.nodes, e.job.requested_time);
      profile_.reserve(e.reserved_start, e.job.requested_time, e.job.nodes);
    }
  }

  void dispatch_ready() {
    count_pass();
    const sched::Time now = sim_.now();
    bool again = true;
    while (again) {
      again = false;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->reserved_start > now) continue;
        if (it->job.nodes > free_nodes()) continue;
        sched::Job job = it->job;
        queue_.erase(it);
        if (!try_start(std::move(job))) rebuild_profile();
        again = true;
        break;
      }
    }
    wakeup_.cancel();
    sched::Time next = des::kTimeInfinity;
    for (const Entry& e : queue_) {
      if (e.reserved_start > now) next = std::min(next, e.reserved_start);
    }
    if (next < des::kTimeInfinity) {
      wakeup_ = sim_.schedule_at(
          next, [this] { dispatch_ready(); }, des::Priority::kControl);
    }
  }

  std::vector<Entry> queue_;
  sched::Profile profile_;
  des::Simulation::EventHandle wakeup_;
};

// ---------------------------------------------------------------------------
// The workload: a cancel storm over an ever-deepening queue.
//
// Arrivals outpace the cluster by design (the paper's overload regime), so
// the 25% of submissions that are "winning" requests pile up in the queue,
// while the other 75% — losing replicas whose sibling started elsewhere —
// are cancelled a few seconds after submission. Cancels therefore hit near
// the *tail* of a queue hundreds deep: the rebuild baseline re-reserves
// every queued job on each one, the incremental core only the short
// suffix behind the freed slot. Jobs run exactly their requested time so
// the comparison isolates cancel handling (early-completion compression
// costs O(queue) in both designs).
struct Workload {
  struct Submission {
    sched::Job job;
    double submit_at = 0.0;
    double cancel_at = -1.0;  // < 0: never cancelled
  };
  std::vector<Submission> submissions;
};

Workload make_workload(int submissions, int nodes, std::uint64_t seed) {
  Workload w;
  w.submissions.reserve(static_cast<std::size_t>(submissions));
  util::Rng rng(seed);
  double t = 0.0;
  for (int i = 1; i <= submissions; ++i) {
    t += rng.uniform(0.5, 3.0);
    Workload::Submission s;
    s.job.id = static_cast<sched::JobId>(i);
    s.job.nodes = static_cast<int>(rng.between(1, std::min(nodes, 8)));
    s.job.requested_time = rng.uniform(300.0, 3600.0);
    s.job.actual_time = s.job.requested_time;
    s.submit_at = t;
    if (rng.chance(0.75)) s.cancel_at = t + rng.uniform(2.0, 90.0);
    w.submissions.push_back(s);
  }
  return w;
}

// What one scheduler did with the workload, plus how fast.
struct RunResult {
  double elapsed = 0.0;
  sched::OpCounters counters;
  std::uint64_t cancels_issued = 0;
  std::size_t peak_queue = 0;
  double start_time_sum = 0.0;  // deterministic trace checksum
  std::uint64_t rebuilds = 0;   // incremental CBF only
  double passes_per_sec() const {
    return static_cast<double>(counters.sched_passes) / elapsed;
  }
  double cancels_per_sec() const {
    return static_cast<double>(counters.cancels) / elapsed;
  }
};

template <typename Scheduler, typename... Args>
RunResult run_workload(const Workload& w, int nodes, Args&&... args) {
  const auto start = Clock::now();
  des::Simulation sim;
  Scheduler sched(sim, nodes, std::forward<Args>(args)...);
  RunResult result;

  sched::ClusterScheduler::Callbacks cb;
  cb.on_start = [&result](const sched::Job& j) {
    result.start_time_sum += j.start_time;
  };
  sched.set_callbacks(std::move(cb));

  for (const Workload::Submission& s : w.submissions) {
    sim.schedule_at(s.submit_at,
                    [&sched, &result, job = s.job] {
                      sched.submit(job);
                      result.peak_queue =
                          std::max(result.peak_queue, sched.queue_length());
                    },
                    des::Priority::kArrival);
    if (s.cancel_at >= 0.0) {
      const sched::JobId id = s.job.id;
      sim.schedule_at(s.cancel_at,
                      [&sched, &result, id] {
                        if (sched.cancel(id)) ++result.cancels_issued;
                      },
                      des::Priority::kCancel);
    }
  }
  sim.run();

  result.counters = sched.counters();
  if constexpr (std::is_same_v<Scheduler, sched::CbfScheduler>) {
    result.rebuilds = sched.rebuilds();
  }
  result.elapsed = seconds_since(start);
  return result;
}

void print_row(const char* name, const RunResult& r) {
  std::printf("  %-12s %8.3f s  %9llu passes  %12.0f passes/s  %10.0f "
              "cancels/s  peak queue %zu\n",
              name, r.elapsed,
              static_cast<unsigned long long>(r.counters.sched_passes),
              r.passes_per_sec(), r.cancels_per_sec(), r.peak_queue);
}

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const auto submissions =
        static_cast<int>(cli.get_int("submissions", 2500));
    const auto nodes = static_cast<int>(cli.get_int("nodes", 64));
    if (submissions < 1 || nodes < 1) {
      throw std::invalid_argument("--submissions and --nodes must be >= 1");
    }
    const std::string out_path = cli.get_string("out", "BENCH_sched.json");

    std::printf("=== micro_sched - scheduler hot-path throughput ===\n");
    std::printf(
        "one redundancy-heavy workload (%d submissions, 75%% cancelled as\n"
        "losing replicas, %d nodes) replayed through each scheduler;\n"
        "cbf-rebuild is the pre-incremental design (full profile rebuild\n"
        "per cancel) and must produce a bit-identical trace to cbf\n\n",
        submissions, nodes);

    const Workload w = make_workload(submissions, nodes, 20260807);

    const RunResult fcfs = run_workload<sched::FcfsScheduler>(w, nodes);
    print_row("fcfs", fcfs);
    const RunResult easy = run_workload<sched::EasyScheduler>(w, nodes);
    print_row("easy", easy);
    const RunResult legacy = run_workload<LegacyCbf>(w, nodes);
    print_row("cbf-rebuild", legacy);
    const RunResult cbf = run_workload<sched::CbfScheduler>(w, nodes);
    print_row("cbf", cbf);

    // The behaviour-preservation contract, enforced in the same run that
    // measures the speedup: same starts, same finishes, same cancel
    // outcomes, same number of scheduling passes, same start times.
    if (cbf.counters.starts != legacy.counters.starts ||
        cbf.counters.finishes != legacy.counters.finishes ||
        cbf.counters.cancels != legacy.counters.cancels ||
        cbf.counters.sched_passes != legacy.counters.sched_passes ||
        cbf.cancels_issued != legacy.cancels_issued ||
        cbf.start_time_sum != legacy.start_time_sum) {
      throw std::runtime_error(
          "equivalence violation: incremental cbf diverged from the "
          "rebuild baseline");
    }

    const double speedup = legacy.elapsed / cbf.elapsed;
    std::printf(
        "\ncbf incremental vs rebuild: %.2fx  (%llu cancels, %llu rebuild "
        "fallbacks, traces bit-identical)\n",
        speedup, static_cast<unsigned long long>(cbf.counters.cancels),
        static_cast<unsigned long long>(cbf.rebuilds));

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot write " + out_path);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"micro_sched\",\n");
    bench::write_json_env_fields(f, 1);
    std::fprintf(f,
                 "  \"submissions\": %d,\n"
                 "  \"nodes\": %d,\n"
                 "  \"cancels\": %llu,\n"
                 "  \"peak_queue_cbf\": %zu,\n"
                 "  \"fcfs_passes_per_sec\": %.0f,\n"
                 "  \"fcfs_cancels_per_sec\": %.0f,\n"
                 "  \"easy_passes_per_sec\": %.0f,\n"
                 "  \"easy_cancels_per_sec\": %.0f,\n"
                 "  \"cbf_rebuild_seconds\": %.4f,\n"
                 "  \"cbf_rebuild_passes_per_sec\": %.0f,\n"
                 "  \"cbf_rebuild_cancels_per_sec\": %.0f,\n"
                 "  \"cbf_seconds\": %.4f,\n"
                 "  \"cbf_passes_per_sec\": %.0f,\n"
                 "  \"cbf_cancels_per_sec\": %.0f,\n"
                 "  \"cbf_rebuild_fallbacks\": %llu,\n"
                 "  \"cbf_speedup_vs_rebuild\": %.4f,\n"
                 "  \"traces_bit_identical\": true\n"
                 "}\n",
                 submissions, nodes,
                 static_cast<unsigned long long>(cbf.counters.cancels),
                 cbf.peak_queue, fcfs.passes_per_sec(),
                 fcfs.cancels_per_sec(), easy.passes_per_sec(),
                 easy.cancels_per_sec(), legacy.elapsed,
                 legacy.passes_per_sec(), legacy.cancels_per_sec(),
                 cbf.elapsed, cbf.passes_per_sec(), cbf.cancels_per_sec(),
                 static_cast<unsigned long long>(cbf.rebuilds), speedup);
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
