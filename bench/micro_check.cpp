// Tie-break schedule-exploration benchmark and sensitivity record.
//
// Runs the DPOR-lite explorer (tools/check) over two configurations and
// records throughput plus the sensitivity verdicts in BENCH_check.json:
//
//   1. ties_swf — a synthetic SWF replay with three same-timestamp jobs
//      per arrival slot on every cluster: maximally tie-heavy, so the
//      explorer's replay loop and pruning machinery dominate the wall
//      clock. The FCFS baseline is genuinely tie-sensitive here (queue
//      position among tied arrivals decides who waits; see DESIGN.md
//      §10), so the expected verdict is TIE-SENSITIVE — the bench records
//      how fast the explorer proves it, not a pass/fail.
//   2. lublin_r4 — the paper's quick figure regime (Lublin arrivals,
//      EASY) with fixed-degree-4 redundancy: continuous submit times, so
//      tie cohorts are rare and the census run dominates. This is the
//      shape CI's `check` job gates on.
//
// Schedules/sec counts full experiment replays (census + explored
// schedules + witness replays) per second of exploration wall time; the
// pruning ratio is the fraction of candidate schedules DPOR proved
// equivalent without replaying.
//
//   ./micro_check [--cohorts=120] [--ties=3] [--k=3] [--samples=2]
//                 [--max-groups=24] [--hours=1] [--out=BENCH_check.json]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_common.h"
#include "explore.h"
#include "rrsim/core/paper.h"
#include "ties_trace.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

struct ScenarioResult {
  check::ExploreReport report;
  double elapsed = 0.0;

  std::uint64_t replays() const {
    return 1 + report.schedules_explored + report.witness_replays;  // +census
  }
  double replays_per_sec() const {
    return elapsed > 0.0 ? static_cast<double>(replays()) / elapsed : 0.0;
  }
  double pruning_ratio() const {
    const double candidates = static_cast<double>(report.schedules_explored +
                                                  report.schedules_pruned);
    return candidates > 0.0
               ? static_cast<double>(report.schedules_pruned) / candidates
               : 0.0;
  }
};

ScenarioResult run_scenario(const char* name, core::ExperimentConfig config,
                            const check::ExploreOptions& opts) {
  check::ExperimentProbe probe(std::move(config));
  const auto start = Clock::now();
  ScenarioResult r;
  r.report = check::explore(probe, opts);
  r.elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("  %-10s %7.3f s  %5llu cohorts (%llu explored)  %6llu "
              "replayed  %6llu pruned (%.0f%%)  %8.1f replays/s  %s\n",
              name, r.elapsed,
              static_cast<unsigned long long>(r.report.groups_total),
              static_cast<unsigned long long>(r.report.groups_explored),
              static_cast<unsigned long long>(r.report.schedules_explored),
              static_cast<unsigned long long>(r.report.schedules_pruned),
              100.0 * r.pruning_ratio(), r.replays_per_sec(),
              r.report.identical ? "IDENTICAL" : "TIE-SENSITIVE");
  return r;
}

void write_scenario_json(std::FILE* f, const char* name,
                         const ScenarioResult& r, bool trailing_comma) {
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"seconds\": %.4f,\n"
      "    \"groups_total\": %llu,\n"
      "    \"groups_explored\": %llu,\n"
      "    \"schedules_explored\": %llu,\n"
      "    \"schedules_pruned\": %llu,\n"
      "    \"pruning_ratio\": %.4f,\n"
      "    \"witness_replays\": %llu,\n"
      "    \"replays_per_sec\": %.2f,\n"
      "    \"divergence_count\": %llu,\n"
      "    \"max_drift\": %.6g,\n"
      "    \"replay_mismatches\": %llu,\n"
      "    \"verdict\": \"%s\",\n"
      "    \"oracles_armed\": %s\n"
      "  }%s\n",
      name, r.elapsed,
      static_cast<unsigned long long>(r.report.groups_total),
      static_cast<unsigned long long>(r.report.groups_explored),
      static_cast<unsigned long long>(r.report.schedules_explored),
      static_cast<unsigned long long>(r.report.schedules_pruned),
      r.pruning_ratio(),
      static_cast<unsigned long long>(r.report.witness_replays),
      r.replays_per_sec(),
      static_cast<unsigned long long>(r.report.divergence_count),
      r.report.max_drift,
      static_cast<unsigned long long>(r.report.replay_mismatches),
      r.report.identical ? "identical" : "tie-sensitive",
      r.report.oracles_armed ? "true" : "false", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int cohorts = static_cast<int>(cli.get_int("cohorts", 120));
    const int ties = static_cast<int>(cli.get_int("ties", 3));
    const auto k = static_cast<std::size_t>(cli.get_int("k", 3));
    const auto samples = static_cast<std::size_t>(cli.get_int("samples", 2));
    const auto max_groups =
        static_cast<std::size_t>(cli.get_int("max-groups", 24));
    const double hours = cli.get_double("hours", 1.0);
    const std::string out_path = cli.get_string("out", "BENCH_check.json");
    if (cohorts < 1 || ties < 2 || hours <= 0.0) {
      throw std::invalid_argument(
          "--cohorts >= 1, --ties >= 2 and --hours > 0 required");
    }

    std::printf("=== micro_check - tie-break schedule exploration ===\n");
    std::printf(
        "DPOR-lite explorer over a tie-heavy SWF replay (%d cohorts x %d\n"
        "tied jobs) and the quick Lublin figure regime with fixed-4\n"
        "redundancy; exhaustive k<=%zu, %zu samples above, first %zu "
        "cohorts.\n\n",
        cohorts, ties, k, samples, max_groups);

    check::ExploreOptions opts;
    opts.exhaustive_k = k;
    opts.samples_above_k = samples;
    opts.seed = 1;
    opts.max_groups = max_groups;

    core::ExperimentConfig ties_config;
    ties_config.n_clusters = 2;
    ties_config.nodes_per_cluster = 16;
    ties_config.submit_horizon = 60.0 * cohorts + 300.0;
    ties_config.trace_files = {check::write_ties_trace(
        cohorts, ties, "rrsim_micro_check_ties.swf")};
    ties_config.seed = 5;
    ties_config.retain_records = true;
    const ScenarioResult ties_result =
        run_scenario("ties_swf", ties_config, opts);

    core::ExperimentConfig lublin = core::figure_config_quick();
    lublin.n_clusters = 2;
    lublin.submit_horizon = hours * 3600.0;
    lublin.scheme = core::RedundancyScheme::fixed(4);
    lublin.retain_records = true;
    const ScenarioResult lublin_result =
        run_scenario("lublin_r4", lublin, opts);

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("cannot write " + out_path);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"benchmark\": \"micro_check\",\n");
    bench::write_json_env_fields(f, 1);
    std::fprintf(f,
                 "  \"cohorts\": %d,\n"
                 "  \"ties_per_cohort\": %d,\n"
                 "  \"exhaustive_k\": %zu,\n"
                 "  \"samples_above_k\": %zu,\n"
                 "  \"max_groups\": %zu,\n"
                 "  \"lublin_hours\": %.2f,\n",
                 cohorts, ties, k, samples, max_groups, hours);
    write_scenario_json(f, "ties_swf", ties_result, /*trailing_comma=*/true);
    write_scenario_json(f, "lublin_r4", lublin_result,
                        /*trailing_comma=*/false);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
