// Grid-scale memory/throughput benchmark and perf record.
//
// Runs the same calibrated campaign point in three record/input modes —
// retained (the figure pipelines' default: every JobRecord kept),
// streaming (retain_records = false: per-finish accumulator, per-cluster
// arrival pumps over materialized streams), and windowed (streaming plus
// stream_window > 0: no materialized streams at all, StreamWindow pumps
// pulling one window at a time from checkpointed generators) — at
// increasing scale, and records for each run the model-level accounting
// *and* the process's peak RSS. Each measurement runs in its own child
// process (re-exec via /proc/self/exe), so VmHWM is the high-water of
// exactly one mode at one scale, not of everything the harness ran
// before it.
//
// Guards asserted on every point: all modes run there must report the
// identical average stretch (the streaming and windowed engines'
// bit-identity contracts) and the identical job count. The headline
// numbers: peak-RSS ratio (retained / streaming), the throughput delta,
// and — for windowed — resident trace bytes versus what materialized
// streams would hold (jobs x sizeof(JobSpec)).
//
// The last point (10^3 clusters, ~10^7 jobs) runs windowed-only: that
// regime is exactly what whole-stream resolution cannot reach cheaply,
// and the committed record documents it.
//
//   ./micro_scale [--points=4] [--hours-scale=1.0] [--window=256]
//                 [--out=BENCH_scale.json] plus common flags.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rrsim/core/experiment.h"
#include "rrsim/metrics/summary.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One campaign point: calibrated steady-state load (drains fast, so the
/// run is submission-bound, not backlog-bound), fixed-degree redundancy on
/// half the jobs — the shape of the paper's mitigation studies, scaled up.
core::ExperimentConfig scale_config(std::size_t clusters, double hours,
                                    const std::string& mode,
                                    std::size_t window) {
  core::ExperimentConfig c;
  c.n_clusters = clusters;
  c.nodes_per_cluster = 128;
  c.load_mode = core::LoadMode::kCalibrated;
  c.target_utilization = 0.7;
  c.submit_horizon = hours * 3600.0;
  c.scheme = core::RedundancyScheme::fixed(3);
  c.redundant_fraction = 0.5;
  c.retain_records = mode == "retained";
  if (mode == "windowed") {
    c.stream_window = window;
  } else if (mode != "retained" && mode != "streaming") {
    throw std::invalid_argument("unknown --mode: " + mode);
  }
  c.seed = 1;
  return c;
}

struct ChildResult {
  std::size_t jobs = 0;
  double elapsed_s = 0.0;
  double avg_stretch = 0.0;
  std::size_t live_state_bytes = 0;
  std::size_t trace_bytes = 0;
  std::size_t peak_rss = 0;
  std::uint64_t ops = 0;
  std::uint64_t st_hits = 0;
  std::uint64_t st_misses = 0;
  std::uint64_t ck_hits = 0;
  std::uint64_t ck_misses = 0;
  std::uint64_t dr_hits = 0;
  std::uint64_t dr_misses = 0;
};

/// Child mode: run one experiment, print one machine-readable line.
int run_child(const util::Cli& cli) {
  const auto clusters =
      static_cast<std::size_t>(cli.get_int("clusters", 4));
  const double hours = cli.get_double("hours", 0.5);
  const std::string mode = cli.get_string("mode", "retained");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 256));
  const core::ExperimentConfig config =
      scale_config(clusters, hours, mode, window);

  const auto start = Clock::now();
  const core::SimResult result = core::run_experiment(config);
  const double elapsed = seconds_since(start);
  // Optional second run at the same point: the common-random-number
  // pairing every sweep uses. Its trace lookups hit the checkpoint table
  // the first run published, so the reported counters demonstrate the
  // cross-point hit rate inside one process (untimed — `elapsed` covers
  // the first run only).
  if (cli.get_bool("ck-rerun", false)) {
    const core::SimResult rerun = core::run_experiment(config);
    if (rerun.jobs_generated != result.jobs_generated) {
      std::fprintf(stderr, "rerun disagreed on job count\n");
      return 1;
    }
  }

  const metrics::ScheduleMetrics m =
      result.streamed ? result.stream.metrics()
                      : metrics::compute_metrics(result.records);
  const std::uint64_t ops = result.ops.submits + result.ops.starts +
                            result.ops.finishes + result.ops.cancels +
                            result.ops.sched_passes;
  const workload::TraceCache& cache = workload::TraceCache::global();
  const std::size_t rss = rrsim::bench::peak_rss_bytes();
  // The cache counters are this child's own: each measurement process has
  // its own global TraceCache, so the parent can report real per-point
  // cache activity instead of its own (idle) cache.
  std::printf("SCALE jobs=%zu elapsed=%.6f stretch=%.17g live=%zu "
              "trace=%zu rss=%zu ops=%" PRIu64 " sthits=%" PRIu64
              " stmisses=%" PRIu64 " ckhits=%" PRIu64 " ckmisses=%" PRIu64
              " drhits=%" PRIu64 " drmisses=%" PRIu64 "\n",
              static_cast<std::size_t>(result.jobs_generated), elapsed,
              m.avg_stretch, result.live_state_bytes,
              result.resident_trace_bytes, rss, ops, cache.hits(),
              cache.misses(), cache.checkpoint_hits(),
              cache.checkpoint_misses(), cache.draw_hits(),
              cache.draw_misses());
  // Hard resident-set budget (the CI smoke): a regression that re-grows
  // the resident set past the budget fails the run, not just a number in
  // a JSON nobody reads.
  const std::int64_t budget_mb = cli.get_int("assert-rss-mb", 0);
  if (budget_mb > 0 &&
      rss > static_cast<std::size_t>(budget_mb) * 1048576) {
    std::fprintf(stderr,
                 "peak RSS %.1f MiB exceeds the --assert-rss-mb=%lld "
                 "budget\n",
                 static_cast<double>(rss) / 1048576.0,
                 static_cast<long long>(budget_mb));
    return 1;
  }
  return 0;
}

/// Runs one (clusters, hours, mode) measurement in a fresh child process
/// and parses its SCALE line. Child stderr passes through to ours.
/// The /proc/self/exe link must be resolved *here*: popen's child is a
/// shell, in which the link points at the shell, not at this binary.
ChildResult run_point(std::size_t clusters, double hours,
                      const std::string& mode, std::size_t window,
                      bool ck_rerun) {
  char self[512];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) throw std::runtime_error("cannot resolve own binary path");
  self[n] = '\0';
  char cmd[768];
  std::snprintf(cmd, sizeof cmd,
                "'%s' --scale-child --clusters=%zu --hours=%.4f "
                "--mode=%s --window=%zu --ck-rerun=%d",
                self, clusters, hours, mode.c_str(), window,
                ck_rerun ? 1 : 0);
  std::FILE* pipe = popen(cmd, "r");
  if (pipe == nullptr) {
    throw std::runtime_error("cannot spawn child measurement process");
  }
  ChildResult r;
  bool parsed = false;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    if (std::sscanf(line,
                    "SCALE jobs=%zu elapsed=%lf stretch=%lf live=%zu "
                    "trace=%zu rss=%zu ops=%" SCNu64 " sthits=%" SCNu64
                    " stmisses=%" SCNu64 " ckhits=%" SCNu64
                    " ckmisses=%" SCNu64 " drhits=%" SCNu64
                    " drmisses=%" SCNu64,
                    &r.jobs, &r.elapsed_s, &r.avg_stretch,
                    &r.live_state_bytes, &r.trace_bytes, &r.peak_rss, &r.ops,
                    &r.st_hits, &r.st_misses, &r.ck_hits, &r.ck_misses,
                    &r.dr_hits, &r.dr_misses) == 13) {
      parsed = true;
    }
  }
  const int status = pclose(pipe);
  if (status != 0 || !parsed) {
    throw std::runtime_error("child measurement failed (clusters=" +
                             std::to_string(clusters) + " mode=" + mode +
                             ")");
  }
  return r;
}

struct Point {
  std::size_t clusters;
  double hours;
  bool all_modes;  // false: windowed-only (the grid-scale record point)
};

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    if (cli.get_bool("scale-child", false)) {
      std::exit(run_child(cli));
    }
    // Hours per point chosen so calibrated 0.7-utilization Lublin streams
    // (~100 jobs per cluster-hour on 128 nodes) generate ~10^4 / ~10^5 /
    // ~10^6 / ~10^7 grid jobs; --hours-scale shrinks or stretches every
    // point (the ctest smoke uses a small fraction).
    const double hscale = cli.get_double("hours-scale", 1.0);
    const auto n_points =
        static_cast<std::size_t>(cli.get_int("points", 4));
    const auto window =
        static_cast<std::size_t>(cli.get_int("window", 256));
    const std::string out_path = cli.get_string("out", "BENCH_scale.json");
    const std::array<Point, 4> all_points{
        Point{4, 25.0 * hscale, true},
        Point{16, 62.5 * hscale, true},
        Point{64, 156.25 * hscale, true},
        // ~10^7 jobs across 10^3 clusters: whole-stream resolution would
        // hold ~320 MB of JobSpecs (plus the TraceCache copy); windowed
        // holds O(window x clusters). Windowed-only by design.
        Point{1000, 100.0 * hscale, false},
    };
    if (n_points < 1 || n_points > all_points.size()) {
      throw std::invalid_argument("--points must be 1..4");
    }
    if (window < 1) {
      throw std::invalid_argument("--window must be >= 1 for micro_scale");
    }

    std::printf("=== micro_scale - memory-budgeted grid-scale campaigns "
                "===\n");
    std::printf("retained vs streaming vs windowed (W=%zu) modes, one child "
                "process per measurement\n\n",
                window);
    std::printf("%9s %9s | %8s %8s | %8s %8s | %8s %8s %9s | %7s\n",
                "clusters", "jobs", "ret s", "ret rss", "str s", "str rss",
                "win s", "win rss", "win trace", "trace x");

    struct Row {
      Point p;
      ChildResult retained;
      ChildResult streaming;
      ChildResult windowed;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < n_points; ++i) {
      const Point p = all_points[i];
      Row row{p, {}, {}, {}};
      if (p.all_modes) {
        row.retained = run_point(p.clusters, p.hours, "retained", window,
                                 false);
        row.streaming = run_point(p.clusters, p.hours, "streaming", window,
                                  false);
      }
      row.windowed =
          run_point(p.clusters, p.hours, "windowed", window, p.all_modes);
      const ChildResult& win = row.windowed;
      if (p.all_modes) {
        const ChildResult& ret = row.retained;
        const ChildResult& str = row.streaming;
        // The bit-identity guards: same schedule, same metrics, all three
        // modes — including windowed vs streaming at the 10^6 point.
        if (ret.jobs != str.jobs || ret.avg_stretch != str.avg_stretch) {
          throw std::runtime_error(
              "equivalence violation: retained and streaming modes "
              "disagree");
        }
        if (win.jobs != str.jobs || win.avg_stretch != str.avg_stretch) {
          throw std::runtime_error(
              "equivalence violation: windowed and streaming modes "
              "disagree");
        }
      }
      // What whole-stream resolution would hold resident for this trace.
      const double materialized = static_cast<double>(win.jobs) *
                                  sizeof(workload::JobSpec);
      const double trace_ratio =
          materialized / static_cast<double>(win.trace_bytes);
      if (p.all_modes) {
        std::printf(
            "%9zu %9zu | %8.2f %7.1fM | %8.2f %7.1fM | %8.2f %7.1fM "
            "%8.2fM | %6.1fx\n",
            p.clusters, win.jobs, row.retained.elapsed_s,
            static_cast<double>(row.retained.peak_rss) / 1048576.0,
            row.streaming.elapsed_s,
            static_cast<double>(row.streaming.peak_rss) / 1048576.0,
            win.elapsed_s, static_cast<double>(win.peak_rss) / 1048576.0,
            static_cast<double>(win.trace_bytes) / 1048576.0, trace_ratio);
      } else {
        std::printf(
            "%9zu %9zu | %8s %8s | %8s %8s | %8.2f %7.1fM %8.2fM | "
            "%6.1fx\n",
            p.clusters, win.jobs, "-", "-", "-", "-", win.elapsed_s,
            static_cast<double>(win.peak_rss) / 1048576.0,
            static_cast<double>(win.trace_bytes) / 1048576.0, trace_ratio);
      }
      rows.push_back(row);
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("cannot write " + out_path);
    std::fprintf(f, "{\n  \"benchmark\": \"micro_scale\",\n");
    // Parent process: the measured runs happen in children, so the
    // parent's own trace cache would report all zeros — suppress it.
    rrsim::bench::write_json_env_fields(f, 1, false);
    std::fprintf(f,
                 "  \"utilization\": 0.7,\n"
                 "  \"scheme\": \"fixed3 p=0.5\",\n"
                 "  \"stream_window\": %zu,\n"
                 "  \"equivalence_checked\": true,\n"
                 "  \"points\": [\n",
                 window);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const ChildResult& win = row.windowed;
      std::fprintf(f,
                   "    {\"clusters\": %zu, \"hours\": %.4f, \"jobs\": %zu,\n",
                   row.p.clusters, row.p.hours, win.jobs);
      if (row.p.all_modes) {
        std::fprintf(
            f,
            "     \"retained\": {\"seconds\": %.4f, \"live_state_bytes\": "
            "%zu, \"trace_bytes\": %zu, \"peak_rss_bytes\": %zu, \"ops\": "
            "%" PRIu64 "},\n"
            "     \"streaming\": {\"seconds\": %.4f, \"live_state_bytes\": "
            "%zu, \"trace_bytes\": %zu, \"peak_rss_bytes\": %zu, \"ops\": "
            "%" PRIu64 "},\n",
            row.retained.elapsed_s, row.retained.live_state_bytes,
            row.retained.trace_bytes, row.retained.peak_rss,
            row.retained.ops, row.streaming.elapsed_s,
            row.streaming.live_state_bytes, row.streaming.trace_bytes,
            row.streaming.peak_rss, row.streaming.ops);
      }
      const double materialized =
          static_cast<double>(win.jobs) * sizeof(workload::JobSpec);
      std::fprintf(
          f,
          "     \"windowed\": {\"seconds\": %.4f, \"live_state_bytes\": "
          "%zu, \"resident_trace_bytes\": %zu, \"materialized_trace_bytes\": "
          "%.0f, \"trace_ratio\": %.2f, \"peak_rss_bytes\": %zu, \"ops\": "
          "%" PRIu64 ", \"trace_cache\": {\"hits\": %" PRIu64
          ", \"misses\": %" PRIu64 ", \"checkpoint_hits\": %" PRIu64
          ", \"checkpoint_misses\": %" PRIu64 ", \"draw_hits\": %" PRIu64
          ", \"draw_misses\": %" PRIu64 "}}",
          win.elapsed_s, win.live_state_bytes, win.trace_bytes, materialized,
          materialized / static_cast<double>(win.trace_bytes), win.peak_rss,
          win.ops, win.st_hits, win.st_misses, win.ck_hits, win.ck_misses,
          win.dr_hits, win.dr_misses);
      if (row.p.all_modes) {
        std::fprintf(
            f,
            ",\n     \"rss_ratio\": %.4f, \"throughput_delta\": %.4f}%s\n",
            static_cast<double>(row.retained.peak_rss) /
                static_cast<double>(row.streaming.peak_rss),
            (static_cast<double>(row.streaming.ops) /
             row.streaming.elapsed_s) /
                    (static_cast<double>(row.retained.ops) /
                     row.retained.elapsed_s) -
                1.0,
            i + 1 < rows.size() ? "," : "");
      } else {
        std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
      }
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
