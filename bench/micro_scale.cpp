// Grid-scale memory/throughput benchmark and perf record.
//
// Runs the same calibrated campaign point in both record modes — retained
// (the figure pipelines' default: every JobRecord kept) and streaming
// (retain_records = false: per-finish accumulator, per-cluster arrival
// pumps) — at increasing scale, and records for each run the model-level
// live-state accounting *and* the process's peak RSS. Each measurement
// runs in its own child process (re-exec via /proc/self/exe), so VmHWM is
// the high-water of exactly one mode at one scale, not of everything the
// harness ran before it.
//
// The guard asserted on every pair: both modes must report the identical
// average stretch (the streaming engine's bit-identity contract) and the
// identical job count. The headline numbers: peak-RSS ratio (retained /
// streaming — the point of the streaming engine) and the throughput delta
// (streaming must not cost event rate).
//
//   ./micro_scale [--points=3] [--hours-scale=1.0]
//                 [--out=BENCH_scale.json] plus common flags.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rrsim/core/experiment.h"
#include "rrsim/metrics/summary.h"

namespace {

using namespace rrsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One campaign point: calibrated steady-state load (drains fast, so the
/// run is submission-bound, not backlog-bound), fixed-degree redundancy on
/// half the jobs — the shape of the paper's mitigation studies, scaled up.
core::ExperimentConfig scale_config(std::size_t clusters, double hours,
                                    bool streaming) {
  core::ExperimentConfig c;
  c.n_clusters = clusters;
  c.nodes_per_cluster = 128;
  c.load_mode = core::LoadMode::kCalibrated;
  c.target_utilization = 0.7;
  c.submit_horizon = hours * 3600.0;
  c.scheme = core::RedundancyScheme::fixed(3);
  c.redundant_fraction = 0.5;
  c.retain_records = !streaming;
  c.seed = 1;
  return c;
}

struct ChildResult {
  std::size_t jobs = 0;
  double elapsed_s = 0.0;
  double avg_stretch = 0.0;
  std::size_t live_state_bytes = 0;
  std::size_t peak_rss = 0;
  std::uint64_t ops = 0;
};

/// Child mode: run one experiment, print one machine-readable line.
int run_child(const util::Cli& cli) {
  const auto clusters =
      static_cast<std::size_t>(cli.get_int("clusters", 4));
  const double hours = cli.get_double("hours", 0.5);
  const bool streaming = cli.get_bool("streaming", false);
  const core::ExperimentConfig config =
      scale_config(clusters, hours, streaming);

  const auto start = Clock::now();
  const core::SimResult result = core::run_experiment(config);
  const double elapsed = seconds_since(start);

  const metrics::ScheduleMetrics m =
      result.streamed ? result.stream.metrics()
                      : metrics::compute_metrics(result.records);
  const std::uint64_t ops = result.ops.submits + result.ops.starts +
                            result.ops.finishes + result.ops.cancels +
                            result.ops.sched_passes;
  std::printf("SCALE jobs=%zu elapsed=%.6f stretch=%.17g live=%zu rss=%zu "
              "ops=%" PRIu64 "\n",
              static_cast<std::size_t>(result.jobs_generated), elapsed,
              m.avg_stretch, result.live_state_bytes,
              rrsim::bench::peak_rss_bytes(), ops);
  return 0;
}

/// Runs one (clusters, hours, mode) measurement in a fresh child process
/// and parses its SCALE line. Child stderr passes through to ours.
/// The /proc/self/exe link must be resolved *here*: popen's child is a
/// shell, in which the link points at the shell, not at this binary.
ChildResult run_point(std::size_t clusters, double hours, bool streaming) {
  char self[512];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) throw std::runtime_error("cannot resolve own binary path");
  self[n] = '\0';
  char cmd[768];
  std::snprintf(cmd, sizeof cmd,
                "'%s' --scale-child --clusters=%zu --hours=%.4f "
                "--streaming=%d",
                self, clusters, hours, streaming ? 1 : 0);
  std::FILE* pipe = popen(cmd, "r");
  if (pipe == nullptr) {
    throw std::runtime_error("cannot spawn child measurement process");
  }
  ChildResult r;
  bool parsed = false;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    if (std::sscanf(line,
                    "SCALE jobs=%zu elapsed=%lf stretch=%lf live=%zu "
                    "rss=%zu ops=%" SCNu64,
                    &r.jobs, &r.elapsed_s, &r.avg_stretch,
                    &r.live_state_bytes, &r.peak_rss, &r.ops) == 6) {
      parsed = true;
    }
  }
  const int status = pclose(pipe);
  if (status != 0 || !parsed) {
    throw std::runtime_error("child measurement failed (clusters=" +
                             std::to_string(clusters) + ")");
  }
  return r;
}

struct Point {
  std::size_t clusters;
  double hours;
};

}  // namespace

int main(int argc, char** argv) {
  return rrsim::bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    if (cli.get_bool("scale-child", false)) {
      std::exit(run_child(cli));
    }
    // Hours per point chosen so calibrated 0.7-utilization Lublin streams
    // generate ~10^4 / ~10^5 / ~10^6 grid jobs; --hours-scale shrinks or
    // stretches every point (the ctest smoke uses a small fraction).
    const double hscale = cli.get_double("hours-scale", 1.0);
    const auto n_points =
        static_cast<std::size_t>(cli.get_int("points", 3));
    const std::string out_path = cli.get_string("out", "BENCH_scale.json");
    // Calibrated 0.7-utilization Lublin streams generate ~100 jobs per
    // cluster-hour on 128 nodes, so these horizons land at ~10^4, ~10^5
    // and ~10^6 grid jobs.
    const std::array<Point, 3> all_points{
        Point{4, 25.0 * hscale},
        Point{16, 62.5 * hscale},
        Point{64, 156.25 * hscale},
    };
    if (n_points < 1 || n_points > all_points.size()) {
      throw std::invalid_argument("--points must be 1..3");
    }

    std::printf("=== micro_scale - memory-budgeted grid-scale campaigns "
                "===\n");
    std::printf("retained vs streaming record modes, one child process per "
                "measurement\n\n");
    std::printf("%9s %9s | %9s %9s %9s | %9s %9s %9s | %7s %7s\n", "clusters",
                "jobs", "ret s", "ret live", "ret rss", "str s", "str live",
                "str rss", "rss x", "d thr");

    struct Row {
      Point p;
      ChildResult retained;
      ChildResult streaming;
    };
    std::vector<Row> rows;
    for (std::size_t i = 0; i < n_points; ++i) {
      const Point p = all_points[i];
      Row row{p, run_point(p.clusters, p.hours, false),
              run_point(p.clusters, p.hours, true)};
      const ChildResult& ret = row.retained;
      const ChildResult& str = row.streaming;
      // The bit-identity guard: same schedule, same metrics, both modes.
      if (ret.jobs != str.jobs || ret.avg_stretch != str.avg_stretch) {
        throw std::runtime_error(
            "equivalence violation: retained and streaming modes disagree");
      }
      const double rss_ratio = static_cast<double>(ret.peak_rss) /
                               static_cast<double>(str.peak_rss);
      const double thr_delta =
          (static_cast<double>(str.ops) / str.elapsed_s) /
              (static_cast<double>(ret.ops) / ret.elapsed_s) -
          1.0;
      std::printf(
          "%9zu %9zu | %9.2f %8.1fM %8.1fM | %9.2f %8.1fM %8.1fM | "
          "%6.2fx %6.1f%%\n",
          p.clusters, ret.jobs, ret.elapsed_s,
          static_cast<double>(ret.live_state_bytes) / 1048576.0,
          static_cast<double>(ret.peak_rss) / 1048576.0, str.elapsed_s,
          static_cast<double>(str.live_state_bytes) / 1048576.0,
          static_cast<double>(str.peak_rss) / 1048576.0, rss_ratio,
          100.0 * thr_delta);
      rows.push_back(row);
    }

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("cannot write " + out_path);
    std::fprintf(f, "{\n  \"benchmark\": \"micro_scale\",\n");
    rrsim::bench::write_json_env_fields(f, 1);
    std::fprintf(f,
                 "  \"utilization\": 0.7,\n"
                 "  \"scheme\": \"fixed3 p=0.5\",\n"
                 "  \"equivalence_checked\": true,\n"
                 "  \"points\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          f,
          "    {\"clusters\": %zu, \"hours\": %.4f, \"jobs\": %zu,\n"
          "     \"retained\": {\"seconds\": %.4f, \"live_state_bytes\": "
          "%zu, \"peak_rss_bytes\": %zu, \"ops\": %" PRIu64 "},\n"
          "     \"streaming\": {\"seconds\": %.4f, \"live_state_bytes\": "
          "%zu, \"peak_rss_bytes\": %zu, \"ops\": %" PRIu64 "},\n"
          "     \"rss_ratio\": %.4f, \"throughput_delta\": %.4f}%s\n",
          row.p.clusters, row.p.hours, row.retained.jobs,
          row.retained.elapsed_s, row.retained.live_state_bytes,
          row.retained.peak_rss, row.retained.ops, row.streaming.elapsed_s,
          row.streaming.live_state_bytes, row.streaming.peak_rss,
          row.streaming.ops,
          static_cast<double>(row.retained.peak_rss) /
              static_cast<double>(row.streaming.peak_rss),
          (static_cast<double>(row.streaming.ops) / row.streaming.elapsed_s) /
                  (static_cast<double>(row.retained.ops) /
                   row.retained.elapsed_s) -
              1.0,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nperf record written to %s\n", out_path.c_str());
  });
}
