// Figure 4: average stretch of jobs using redundant requests ("r jobs")
// and jobs not using them ("n-r jobs") versus the percentage p of jobs
// using redundancy, N = 10 clusters. Paper's shape: n-r jobs get worse
// roughly linearly in p (more so for higher-degree schemes), r jobs do
// much better than n-r jobs, and p=100 beats p=0 overall.
//
//   ./fig4_penalty [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 4 - stretch of r jobs vs n-r jobs vs percentage using "
        "redundancy",
        "N=10; 'r' = average stretch of jobs using redundant requests,\n"
        "'n-r' = jobs not using them; paper: n-r grows with p, r << n-r",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<double> percents{0.0, 20.0, 40.0, 60.0, 80.0, 100.0};
    const std::vector<std::string> schemes{"R2", "R4", "HALF", "ALL"};

    util::Table table({"p %", "R2 r", "R2 n-r", "R4 r", "R4 n-r", "HALF r",
                       "HALF n-r", "ALL r", "ALL n-r"});
    for (const double p : percents) {
      table.begin_row().add(p, 0);
      for (const std::string& scheme : schemes) {
        core::ExperimentConfig c = base;
        c.scheme = core::RedundancyScheme::parse(scheme);
        c.redundant_fraction = p / 100.0;
        const core::ClassifiedCampaign res =
            core::run_classified_campaign(c, reps);
        table.add(res.avg_stretch_redundant, 2)
            .add(res.avg_stretch_non_redundant, 2);
        std::fflush(stdout);
      }
    }
    table.print(std::cout);
    std::printf("\n(zero cells mean the class is empty at that p)\n");
  });
}
