// Figure 4: average stretch of jobs using redundant requests ("r jobs")
// and jobs not using them ("n-r jobs") versus the percentage p of jobs
// using redundancy, N = 10 clusters. Paper's shape: n-r jobs get worse
// roughly linearly in p (more so for higher-degree schemes), r jobs do
// much better than n-r jobs, and p=100 beats p=0 overall.
//
//   ./fig4_penalty [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Figure 4 - stretch of r jobs vs n-r jobs vs percentage using "
        "redundancy",
        "N=10; 'r' = average stretch of jobs using redundant requests,\n"
        "'n-r' = jobs not using them; paper: n-r grows with p, r << n-r",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    const std::vector<double> percents{0.0, 20.0, 40.0, 60.0, 80.0, 100.0};
    const std::vector<std::string> schemes{"R2", "R4", "HALF", "ALL"};

    std::vector<std::vector<core::ClassifiedCampaign>> grid(
        percents.size(),
        std::vector<core::ClassifiedCampaign>(schemes.size()));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < percents.size(); ++i) {
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        core::ExperimentConfig c = base;
        c.scheme = core::RedundancyScheme::parse(schemes[j]);
        c.redundant_fraction = percents[i] / 100.0;
        sweep.add_classified(
            c, [&grid, i, j](const core::ClassifiedCampaign& m) {
              grid[i][j] = m;
            });
      }
    }
    sweep.run();

    util::Table table({"p %", "R2 r", "R2 n-r", "R4 r", "R4 n-r", "HALF r",
                       "HALF n-r", "ALL r", "ALL n-r"});
    for (std::size_t i = 0; i < percents.size(); ++i) {
      table.begin_row().add(percents[i], 0);
      for (std::size_t j = 0; j < schemes.size(); ++j) {
        table.add(grid[i][j].avg_stretch_redundant, 2)
            .add(grid[i][j].avg_stretch_non_redundant, 2);
      }
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
    std::printf("\n(zero cells mean the class is empty at that p)\n");
  });
}
