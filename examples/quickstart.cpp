// Quickstart: simulate one 128-node cluster under the Lublin-Feitelson
// workload with the EASY backfilling scheduler, and print the schedule
// metrics. This is the smallest end-to-end use of the rrsim public API.
//
//   ./quickstart [--nodes=128] [--hours=6] [--util=0.92] [--algo=easy]
//                [--seed=42]

#include <cstdio>
#include <exception>

#include "rrsim/core/options.h"
#include "rrsim/metrics/summary.h"
#include "rrsim/util/cli.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);

    rrsim::core::ExperimentConfig config;
    config.n_clusters = 1;  // a single site: no redundancy possible
    config.submit_horizon = 6.0 * 3600.0;
    // A lone cluster at the model's full peak rate would only ever grow
    // its queue; run it at a steady 90 % load by default.
    config.load_mode = rrsim::core::LoadMode::kCalibrated;
    config.target_utilization = 0.9;
    config.seed = 42;
    config = rrsim::core::apply_common_flags(config, cli);
    config.n_clusters = 1;

    const rrsim::core::SimResult result = rrsim::core::run_experiment(config);
    const rrsim::metrics::ScheduleMetrics m =
        rrsim::metrics::compute_metrics(result.records);

    std::printf("rrsim quickstart: %zu jobs on %d nodes (%s)\n", m.jobs,
                config.nodes_per_cluster,
                rrsim::sched::algorithm_name(config.algorithm).c_str());
    std::printf("  average stretch      : %.3f\n", m.avg_stretch);
    std::printf("  CV of stretches      : %.1f %%\n", m.cv_stretch_percent);
    std::printf("  max stretch          : %.1f\n", m.max_stretch);
    std::printf("  average wait         : %.1f s\n", m.avg_wait);
    std::printf("  average turnaround   : %.1f s\n", m.avg_turnaround);
    std::printf("  scheduler ops        : %llu submits, %llu starts\n",
                static_cast<unsigned long long>(result.ops.submits),
                static_cast<unsigned long long>(result.ops.starts));
    std::printf("  drained at           : %.1f h simulated\n",
                result.end_time / 3600.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
