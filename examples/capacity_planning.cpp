// Capacity planning: how much request redundancy can YOUR site tolerate?
// Measures this machine's front-end throughput curve (the Fig 5
// protocol), fits the exponential-decay model, then combines it with a
// middleware rating to answer the paper's Section 4 question for a range
// of job arrival rates.
//
//   ./capacity_planning [--pairs=500] [--queue-depth=10000]
//                       [--gram-rate=0.5] [--seed=5]

#include <cstdio>
#include <exception>

#include "rrsim/loadmodel/capacity.h"
#include "rrsim/loadmodel/frontend.h"
#include "rrsim/util/cli.h"
#include "rrsim/util/rng.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);
    const int pairs = static_cast<int>(cli.get_int("pairs", 500));
    const double depth = cli.get_double("queue-depth", 10000.0);
    const double gram = cli.get_double("gram-rate", 0.5);
    rrsim::util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));

    std::printf("capacity planning: measuring the local front-end...\n");
    const auto points = rrsim::loadmodel::measure_throughput(
        16, {0, 5000, 10000, 20000}, pairs, rng);
    std::vector<std::pair<double, double>> fit_points;
    for (const auto& p : points) {
      std::printf("  queue %6zu : %8.0f submit+cancel pairs/s\n",
                  p.queue_size, p.pairs_per_sec);
      fit_points.emplace_back(static_cast<double>(p.queue_size),
                              p.pairs_per_sec);
    }
    const rrsim::loadmodel::ExpDecayModel model =
        rrsim::loadmodel::fit_exp_decay(fit_points);
    std::printf("fitted: floor %.0f + %.0f * exp(-q/%.0f)\n\n",
                model.floor(), model.amplitude(), model.scale());

    std::printf("sustainable redundancy r per job (scheduler measured at a "
                "%.0f-deep queue,\nmiddleware %.2f+%.2f ops/s):\n",
                depth, gram, gram);
    const rrsim::loadmodel::ServiceRates middleware{gram, gram};
    for (const double iat : {1.0, 5.0, 15.0, 60.0}) {
      const auto report = rrsim::loadmodel::analyze_capacity(
          model, depth, middleware, iat);
      std::printf("  one job every %5.1f s : scheduler %6d, middleware %3d "
                  "-> system limit %d (%s-bound)\n",
                  iat, report.scheduler_max_r, report.middleware_max_r,
                  report.system_max_r,
                  report.middleware_is_bottleneck ? "middleware"
                                                  : "scheduler");
    }
    std::printf("\n(the paper's 2006-era numbers gave 30 and 2 at a 5 s "
                "inter-arrival; your\nfront-end is faster, the middleware "
                "rating is what you configure)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
