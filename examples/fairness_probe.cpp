// Fairness probe (the paper's Fig 4 question): when only a fraction p of
// jobs use redundant requests, how much better off are they — and how
// much worse off is everyone else?
//
//   ./fairness_probe [--clusters=10] [--scheme=ALL] [--percent=40]
//                    [--reps=3] [--hours=6] [--seed=7]

#include <cstdio>
#include <exception>

#include "rrsim/core/campaign.h"
#include "rrsim/core/options.h"
#include "rrsim/util/cli.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);

    rrsim::core::ExperimentConfig config;
    config.scheme = rrsim::core::RedundancyScheme::all();
    config.redundant_fraction = 0.4;
    config.seed = 7;
    config = rrsim::core::apply_common_flags(config, cli);
    const int reps = static_cast<int>(cli.get_int("reps", 3));

    std::printf(
        "fairness probe: %zu clusters, scheme %s, %.0f %% of jobs redundant\n",
        config.n_clusters, config.scheme.name().c_str(),
        config.redundant_fraction * 100.0);
    const rrsim::core::ClassifiedCampaign res =
        rrsim::core::run_classified_campaign(config, reps);
    std::printf("  avg stretch, jobs using redundancy   : %.2f  (%zu jobs)\n",
                res.avg_stretch_redundant, res.redundant_jobs);
    std::printf("  avg stretch, jobs NOT using it       : %.2f  (%zu jobs)\n",
                res.avg_stretch_non_redundant, res.non_redundant_jobs);
    std::printf("  avg stretch, all jobs                : %.2f\n",
                res.avg_stretch_all);
    if (res.avg_stretch_redundant > 0.0) {
      std::printf("  advantage factor (n-r / r)           : %.2f\n",
                  res.avg_stretch_non_redundant / res.avg_stretch_redundant);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
