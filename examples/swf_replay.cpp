// Replay a Standard Workload Format trace through one of rrsim's
// schedulers — the workflow used to cross-check model results against
// Parallel Workloads Archive logs. Without --trace, a synthetic trace is
// generated with the Lublin model, written to disk, read back, and
// replayed (demonstrating the full SWF round trip).
//
//   ./swf_replay [--trace=path.swf] [--nodes=128] [--algo=easy]
//                [--hours=2] [--seed=3]

#include <cstdio>
#include <exception>

#include "rrsim/des/simulation.h"
#include "rrsim/metrics/record.h"
#include "rrsim/metrics/summary.h"
#include "rrsim/sched/factory.h"
#include "rrsim/util/cli.h"
#include "rrsim/workload/calibrate.h"
#include "rrsim/workload/lublin.h"
#include "rrsim/workload/swf.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);
    const int nodes = static_cast<int>(cli.get_int("nodes", 128));
    const auto algo =
        rrsim::sched::parse_algorithm(cli.get_string("algo", "easy"));

    rrsim::workload::JobStream stream;
    if (cli.has("trace")) {
      stream = rrsim::workload::read_swf_file(cli.get_string("trace", ""));
      std::printf("swf_replay: %zu jobs from %s\n", stream.size(),
                  cli.get_string("trace", "").c_str());
    } else {
      rrsim::util::Rng rng(
          static_cast<std::uint64_t>(cli.get_int("seed", 3)));
      auto params = rrsim::workload::calibrate_params(
          rrsim::workload::LublinParams{}, nodes, 0.9, rng);
      const rrsim::workload::LublinModel model(params, nodes);
      stream = model.generate_stream(rng, cli.get_double("hours", 2.0) * 3600.0);
      rrsim::workload::write_swf_file("generated.swf", stream);
      stream = rrsim::workload::read_swf_file("generated.swf");
      std::printf("swf_replay: %zu synthetic jobs (round-tripped via "
                  "generated.swf)\n", stream.size());
    }

    rrsim::des::Simulation sim;
    auto scheduler = rrsim::sched::make_scheduler(algo, sim, nodes);
    rrsim::metrics::JobRecords records;
    rrsim::sched::ClusterScheduler::Callbacks cb;
    cb.on_finish = [&records](const rrsim::sched::Job& j) {
      rrsim::metrics::JobRecord r;
      r.grid_id = j.id;
      r.nodes = j.nodes;
      r.submit_time = j.submit_time;
      r.start_time = j.start_time;
      r.finish_time = j.finish_time;
      r.actual_time = j.actual_time;
      r.requested_time = j.requested_time;
      records.push_back(r);
    };
    scheduler->set_callbacks(std::move(cb));

    rrsim::sched::JobId next_id = 1;
    for (const auto& spec : stream) {
      if (spec.nodes > nodes) continue;  // trace job too wide for cluster
      rrsim::sched::Job job;
      job.id = next_id++;
      job.nodes = spec.nodes;
      job.requested_time = spec.requested_time;
      job.actual_time = spec.runtime;
      sim.schedule_at(
          spec.submit_time,
          [&s = *scheduler, job] { s.submit(job); },
          rrsim::des::Priority::kArrival);
    }
    sim.run();

    const auto m = rrsim::metrics::compute_metrics(records);
    std::printf("  replayed %zu jobs on %d nodes with %s\n", m.jobs, nodes,
                scheduler->name().c_str());
    std::printf("  average stretch : %.3f   CV %.1f %%   max %.1f\n",
                m.avg_stretch, m.cv_stretch_percent, m.max_stretch);
    std::printf("  average wait    : %.1f s\n", m.avg_wait);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
