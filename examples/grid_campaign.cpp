// Multi-site redundancy study (the paper's Fig 1 setup, one scheme):
// simulate N clusters, with every job sending redundant requests under a
// chosen scheme, and report schedule metrics relative to the same streams
// scheduled without redundancy.
//
//   ./grid_campaign [--clusters=10] [--scheme=HALF] [--reps=5] [--hours=6]
//                   [--load=shared|peak|util] [--algo=easy] [--seed=1]
//                   [--jobs=N]  (campaign worker threads; also RRSIM_JOBS)

#include <cstdio>
#include <exception>

#include "rrsim/core/campaign.h"
#include "rrsim/core/options.h"
#include "rrsim/util/cli.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);

    rrsim::core::ExperimentConfig config;
    config.scheme = rrsim::core::RedundancyScheme::half();
    config = rrsim::core::apply_common_flags(config, cli);
    const int reps = static_cast<int>(cli.get_int("reps", 5));

    std::printf("grid campaign: %zu clusters, scheme %s, %d repetitions\n",
                config.n_clusters, config.scheme.name().c_str(), reps);
    const rrsim::core::RelativeMetrics rel =
        rrsim::core::run_relative_campaign(config, reps);
    std::printf("  relative average stretch : %.3f  (< 1 means redundancy "
                "helps)\n", rel.rel_avg_stretch);
    std::printf("  relative CV of stretches : %.3f  (< 1 means fairer)\n",
                rel.rel_cv_stretch);
    std::printf("  relative max stretch     : %.3f\n", rel.rel_max_stretch);
    std::printf("  relative turnaround      : %.3f\n",
                rel.rel_avg_turnaround);
    std::printf("  win rate over baseline   : %.0f %%\n",
                rel.win_rate * 100.0);
    std::printf("  worst repetition ratio   : %.3f\n",
                rel.worst_rel_stretch);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
