// Queue-wait prediction demo (Section 5 machinery): drive a CBF-scheduled
// cluster by hand, submit a probe job, and compare the reservation-based
// prediction against what actually happens when earlier jobs finish
// before their requested times.
//
//   ./predict_wait [--nodes=64] [--overestimate=2.16]

#include <cstdio>
#include <exception>
#include <stdexcept>

#include "rrsim/des/simulation.h"
#include "rrsim/sched/cbf.h"
#include "rrsim/util/cli.h"

int main(int argc, char** argv) {
  try {
    const rrsim::util::Cli cli(argc, argv);
    const int nodes = static_cast<int>(cli.get_int("nodes", 64));
    const double over = cli.get_double("overestimate", 2.16);
    if (over < 1.0) throw std::invalid_argument("--overestimate must be >= 1");

    rrsim::des::Simulation sim;
    rrsim::sched::CbfScheduler cbf(sim, nodes);

    // A wall of work: four jobs that each occupy the whole cluster for a
    // *requested* hour but actually run only 1/overestimate of it.
    for (rrsim::sched::JobId id = 1; id <= 4; ++id) {
      rrsim::sched::Job job;
      job.id = id;
      job.nodes = nodes;
      job.requested_time = 3600.0;
      job.actual_time = 3600.0 / over;
      cbf.submit(job);
    }

    // The probe: a small job submitted now. CBF reserves it a slot after
    // the wall (based on requested times) — that reservation is the
    // prediction a user would be given.
    rrsim::sched::Job probe;
    probe.id = 99;
    probe.nodes = nodes / 2 + 1;  // cannot backfill beside the wall
    probe.requested_time = 600.0;
    probe.actual_time = 600.0;
    cbf.submit(probe);

    const auto predicted = cbf.predicted_start_at_submit(99);
    double actual_start = -1.0;
    rrsim::sched::ClusterScheduler::Callbacks cb;
    cb.on_start = [&](const rrsim::sched::Job& j) {
      if (j.id == 99) actual_start = j.start_time;
    };
    cbf.set_callbacks(std::move(cb));

    sim.run();

    std::printf("predict_wait: %d-node cluster, CBF, overestimation %.2fx\n",
                nodes, over);
    std::printf("  predicted start of probe : %.0f s\n",
                predicted.value_or(-1.0));
    std::printf("  actual start of probe    : %.0f s\n", actual_start);
    if (actual_start > 0.0 && predicted) {
      std::printf("  over-prediction factor   : %.2f\n",
                  *predicted / actual_start);
      std::printf("(requested times are conservative, so queue-based "
                  "predictions are, too — the paper's Section 5 effect)\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
