#include "linter.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "flow.h"
#include "scan.h"

namespace rrsim::lint {

namespace {

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

constexpr char kUnorderedContainer[] = "unordered-container";
constexpr char kWallClock[] = "wall-clock";
constexpr char kAmbientRng[] = "ambient-rng";
constexpr char kUnseededShuffle[] = "unseeded-shuffle";
constexpr char kPointerKey[] = "pointer-key";
constexpr char kMutableGlobal[] = "mutable-global";
constexpr char kStdFunctionMember[] = "std-function-member";
constexpr char kWorkerRefCapture[] = "worker-ref-capture";
constexpr char kStreamMaterialization[] = "stream-materialization";
constexpr char kBareAllow[] = "bare-allow";
constexpr char kTieSensitiveCompare[] = "tie-sensitive-compare";
constexpr char kIterationOrderEscape[] = "iteration-order-escape";
constexpr char kUnstableSort[] = "unstable-sort";

const std::vector<RuleInfo> kRules = {
    {kUnorderedContainer,
     "std::unordered_{map,set} banned: iteration order is unspecified and "
     "can leak into results; use util::FlatHashMap (no ordered iteration "
     "exposed), util::FlatOrderedMap, or sorted extraction"},
    {kWallClock,
     "wall-clock reads (std::time, clock(), system_clock, steady_clock, "
     "...) in src/: simulated time must come from des::Simulation::now()"},
    {kAmbientRng,
     "ambient randomness (rand(), srand(), std::random_device, "
     "random_shuffle): all draws must come from a seeded util::Rng"},
    {kUnseededShuffle,
     "std::shuffle/std::sample without a visibly seeded engine argument"},
    {kPointerKey,
     "pointer-keyed map/set or pointer-comparing std::less/std::greater: "
     "pointer order varies run to run; key on ids"},
    {kMutableGlobal,
     "mutable namespace-scope variable in src/: cross-run state breaks "
     "replay determinism; pass state explicitly or make it constexpr"},
    {kStdFunctionMember,
     "std::function stored as a class member in src/: use "
     "util::InlineFunction / util::TaskFunction on hot paths, or justify "
     "why the type-erased heap fallback is acceptable"},
    {kWorkerRefCapture,
     "default reference capture ([&] / [&, ...]) on a worker callback "
     "passed to parallel_for_each in src/: wholesale capture silently "
     "shares mutable state across worker threads (the PDES partition "
     "contract forbids it); capture the objects you need explicitly"},
    {kStreamMaterialization,
     "generate_stream / read_swf call in src/core or src/exec: whole-"
     "stream materialization is O(total jobs) resident and defeats the "
     "windowed trace engine; pull windows via workload::StreamWindow or a "
     "WindowSpool reader (or justify the explicitly-retained path with an "
     "allow annotation)"},
    {kBareAllow,
     "rrsim-lint-allow annotation without a justification or naming an "
     "unknown rule"},
    {kTieSensitiveCompare,
     "comparator (functor, or lambda passed to std::sort / nth_element / "
     "*_heap) in src/ ordering by time-like fields with no discriminating "
     "field (seq / id / ...): equal timestamps fall back to container "
     "order accidents; std::stable_sort comparators are exempt"},
    {kIterationOrderEscape,
     "util::FlatHashMap::for_each body in src/ that lets hash-order "
     "escape: posting events, appending to a sequence, or accumulating "
     "into a float; collect into a sorted buffer first"},
    {kUnstableSort,
     "std::sort in src/ without a provably total order: elements with a "
     "time-like field and no operator<, or a comparator the linter cannot "
     "analyze; use std::stable_sort or add a stable-id tie-break"},
};

// Pass 1 (strip + allow harvesting) and pass 2 (tokenize) live in
// scan.cpp, shared with the flow-aware analyzer in flow.cpp.

// ---------------------------------------------------------------------------
// Pass 3: rules over the token stream
// ---------------------------------------------------------------------------

bool in_set(const std::string& t, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (t == s) return true;
  }
  return false;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

class Scanner {
 public:
  Scanner(const std::string& path, Category cat, const AllowSet& allows,
          std::vector<Finding>& findings)
      : path_(path),
        cat_(cat),
        allows_(allows),
        findings_(findings),
        stream_rule_applies_(cat == Category::kSrc &&
                             (has_path_component(path, "core") ||
                              has_path_component(path, "exec"))) {}

  void run(const std::vector<Token>& tokens) {
    tokens_ = &tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      token_rules(i);
      scope_step(i);
    }
  }

 private:
  enum class Scope { kNamespace, kClass, kEnum, kFunction, kBlock, kInit };

  const Token& tok(std::size_t i) const { return (*tokens_)[i]; }
  std::size_t count() const { return tokens_->size(); }

  void report(const char* rule, int line, const std::string& msg) {
    if (allows_.allows(rule, line)) return;
    // One finding per (rule, line): a single declaration can trip the
    // same rule through several tokens.
    if (!reported_.insert(std::string(rule) + "#" +
                          std::to_string(line)).second) {
      return;
    }
    findings_.push_back({path_, line, rule, msg});
  }

  // --- token-level rules --------------------------------------------------

  /// True if tokens at i-2, i-1 are `std ::` (possibly `:: x ::` chains
  /// are not treated as std).
  bool std_qualified(std::size_t i) const {
    return i >= 2 && tok(i - 1).text == "::" && tok(i - 2).text == "std";
  }

  /// True if the identifier at `i` is a free call: `name (` not preceded
  /// by `.`, `->` or a declaration-ish token. Member accesses and
  /// declarations of same-named entities stay silent.
  bool bare_call(std::size_t i) const {
    if (i + 1 >= count() || tok(i + 1).text != "(") return false;
    if (i == 0) return true;
    const std::string& p = tok(i - 1).text;
    if (p == "::") {
      // std::time(...) or ::time(...) — qualified call.
      if (i >= 2) {
        const std::string& pp = tok(i - 2).text;
        return pp == "std" || !tok(i - 2).is_ident;
      }
      return true;
    }
    if (p == "." || p == "->") return false;      // member access
    if (tok(i - 1).is_ident) return false;        // `Time time(...)` decl
    if (p == ">" || p == "*" || p == "&") return false;  // declarator
    return true;
  }

  /// Finds the token index of the `>` matching the `<` at `open`.
  std::size_t match_angle(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < count(); ++i) {
      const std::string& t = tok(i).text;
      if (t == "<") ++depth;
      if (t == ">") {
        if (--depth == 0) return i;
      }
      if (t == ";" || t == "{") break;  // not a template argument list
    }
    return open;
  }

  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < count(); ++i) {
      const std::string& t = tok(i).text;
      if (t == "(") ++depth;
      if (t == ")") {
        if (--depth == 0) return i;
      }
    }
    return open;
  }

  void token_rules(std::size_t i) {
    const Token& t = tok(i);
    if (!t.is_ident) return;

    // unordered-container: ban the type wherever it appears (a token
    // scanner cannot prove the container is never iterated).
    if (in_set(t.text, {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"})) {
      report(kUnorderedContainer, t.line,
             "std::" + t.text +
                 " has unspecified iteration order; use util::FlatHashMap, "
                 "util::FlatOrderedMap, or sorted extraction");
    }

    // wall-clock (src/ only: benches time themselves by design, and the
    // bench env stamp uses std::time on purpose).
    if (cat_ == Category::kSrc) {
      if (in_set(t.text,
                 {"system_clock", "steady_clock", "high_resolution_clock",
                  "gettimeofday", "clock_gettime", "localtime", "gmtime",
                  "mktime", "ctime", "timespec_get"})) {
        report(kWallClock, t.line,
               "wall-clock source '" + t.text +
                   "' in simulator code; simulated time must come from "
                   "des::Simulation::now()");
      }
      if ((t.text == "time" || t.text == "clock") && bare_call(i)) {
        report(kWallClock, t.line,
               "call to " + t.text +
                   "() reads the wall clock; simulated time must come "
                   "from des::Simulation::now()");
      }
    }

    // ambient-rng: unseeded / non-replayable randomness anywhere.
    if (in_set(t.text, {"random_device", "random_shuffle", "srand",
                        "drand48", "lrand48", "srandom"})) {
      report(kAmbientRng, t.line,
             "'" + t.text +
                 "' is not replayable; draw from a seeded util::Rng");
    }
    if (t.text == "rand" && bare_call(i)) {
      report(kAmbientRng, t.line,
             "rand() is hidden global state; draw from a seeded util::Rng");
    }

    // unseeded-shuffle: std::shuffle/std::sample whose arguments show no
    // recognizable deterministic engine.
    if ((t.text == "shuffle" || t.text == "sample") && std_qualified(i) &&
        i + 1 < count() && tok(i + 1).text == "(") {
      const std::size_t close = match_paren(i + 1);
      bool seeded = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (!tok(j).is_ident) continue;
        const std::string l = lower(tok(j).text);
        if (l.find("rng") != std::string::npos ||
            l.find("engine") != std::string::npos ||
            in_set(tok(j).text,
                   {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
                    "ranlux24", "ranlux48", "knuth_b", "gen", "urbg"})) {
          seeded = true;
          break;
        }
      }
      if (!seeded) {
        report(kUnseededShuffle, t.line,
               "std::" + t.text +
                   " without a visibly seeded engine; pass a named "
                   "util::Rng-backed engine");
      }
    }

    // worker-ref-capture (src/ only): a lambda handed to
    // parallel_for_each with a default reference capture. Worker
    // callbacks run concurrently on pool threads, so "capture whatever
    // the body mentions" is exactly how shared mutable state sneaks into
    // a parallel region; explicit captures make every shared object
    // visible at the call site.
    if (cat_ == Category::kSrc && t.text == "parallel_for_each" &&
        i + 1 < count() && tok(i + 1).text == "(") {
      const std::size_t close = match_paren(i + 1);
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (tok(j).text != "[" || tok(j + 1).text != "&") continue;
        if (tok(j + 2).text == "]" || tok(j + 2).text == ",") {
          report(kWorkerRefCapture, tok(j).line,
                 "worker callback passed to parallel_for_each captures by "
                 "default reference; name the captured objects explicitly "
                 "so shared state is auditable");
        }
      }
    }

    // stream-materialization (src/core + src/exec only): a call that
    // materializes a whole job stream in the experiment/execution layers.
    // Fires on member calls too (model.generate_stream(...) is the usual
    // form) — the retained-path call site carries a justified allow.
    if (stream_rule_applies_ && t.text == "generate_stream" &&
        i + 1 < count() && tok(i + 1).text == "(") {
      report(kStreamMaterialization, t.line,
             "generate_stream materializes a whole stream (O(total jobs) "
             "resident); pull bounded chunks via workload::StreamWindow, "
             "or annotate the explicitly-retained path");
    }
    // Same rule, SWF flavor: read_swf / read_swf_file load an entire
    // trace file into memory. In core/exec that belongs in exactly one
    // sanctioned entry point (core::detail::load_swf_stream, which both
    // the retained path and the WindowSpool builder share) — anywhere
    // else it is a full-trace load sneaking past the spool.
    if (stream_rule_applies_ &&
        (t.text == "read_swf" || t.text == "read_swf_file") &&
        i + 1 < count() && tok(i + 1).text == "(") {
      report(kStreamMaterialization, t.line,
             t.text + " loads a whole SWF trace (O(total jobs) resident); "
             "replay through the retained entry point or a WindowSpool "
             "reader, or annotate the sanctioned loader");
    }

    // pointer-key: map/set keyed on a pointer, or a pointer-comparing
    // ordering functor.
    if (i + 1 < count() && tok(i + 1).text == "<") {
      const bool keyed = in_set(
          t.text, {"map", "multimap", "set", "multiset", "unordered_map",
                   "unordered_set", "unordered_multimap",
                   "unordered_multiset", "FlatHashMap", "FlatOrderedMap"});
      const bool comparator = in_set(t.text, {"less", "greater"});
      if (keyed || comparator) {
        const std::size_t close = match_angle(i + 1);
        if (close > i + 1) {
          int depth = 0;
          bool past_first_arg = false;
          for (std::size_t j = i + 1; j < close; ++j) {
            const std::string& a = tok(j).text;
            if (a == "<") ++depth;
            if (a == ">") --depth;
            if (a == "," && depth == 1) past_first_arg = true;
            if (a == "*" && (comparator || !past_first_arg)) {
              report(kPointerKey, t.line,
                     "'" + t.text +
                         "' ordered/keyed on a pointer: pointer values "
                         "vary run to run; key on stable ids instead");
              break;
            }
          }
        }
      }
    }
  }

  // --- scope machine + declaration rules ----------------------------------

  struct ScopeFrame {
    Scope kind;
    std::vector<std::size_t> saved_stmt;  // for kInit
  };

  Scope current() const {
    return stack_.empty() ? Scope::kNamespace : stack_.back().kind;
  }

  bool stmt_has(const char* ident) const {
    for (const std::size_t k : stmt_) {
      if (tok(k).text == ident) return true;
    }
    return false;
  }

  /// True if the statement has a '(' at template-angle depth 0 — i.e. it
  /// declares or defines something callable.
  bool stmt_has_depth0_paren() const {
    int angle = 0;
    for (const std::size_t k : stmt_) {
      const std::string& t = tok(k).text;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "(" && angle == 0) return true;
    }
    return false;
  }

  void scope_step(std::size_t i) {
    const std::string& t = tok(i).text;
    if (t == "{") {
      ScopeFrame frame;
      const Scope parent = current();
      if (parent == Scope::kFunction || parent == Scope::kBlock ||
          parent == Scope::kInit || parent == Scope::kEnum) {
        frame.kind = Scope::kBlock;
      } else if (stmt_has("namespace")) {
        frame.kind = Scope::kNamespace;
      } else if (stmt_has("enum")) {
        frame.kind = Scope::kEnum;
      } else if (stmt_has_depth0_paren()) {
        frame.kind = Scope::kFunction;
      } else if (stmt_has("class") || stmt_has("struct") ||
                 stmt_has("union")) {
        frame.kind = Scope::kClass;
      } else if (!stmt_.empty()) {
        frame.kind = Scope::kInit;  // brace initializer of a declaration
        frame.saved_stmt = stmt_;
      } else {
        frame.kind = Scope::kBlock;
      }
      stack_.push_back(std::move(frame));
      stmt_.clear();
      return;
    }
    if (t == "}") {
      if (!stack_.empty()) {
        if (stack_.back().kind == Scope::kInit) {
          stmt_ = stack_.back().saved_stmt;
        } else {
          stmt_.clear();
        }
        stack_.pop_back();
      }
      return;
    }
    if (t == ";") {
      if (current() == Scope::kNamespace) analyze_namespace_decl();
      if (current() == Scope::kClass) analyze_member_decl();
      stmt_.clear();
      return;
    }
    stmt_.push_back(i);
  }

  void analyze_namespace_decl() {
    if (cat_ != Category::kSrc || stmt_.empty()) return;
    // mutable-global: a namespace-scope variable definition that is not
    // constant. Type definitions, aliases, templates and anything
    // callable are excluded.
    for (const char* skip :
         {"const", "constexpr", "consteval", "using", "typedef",
          "namespace", "friend", "template", "static_assert", "operator",
          "class", "struct", "union", "enum", "extern", "concept",
          "requires"}) {
      if (stmt_has(skip)) return;
    }
    if (stmt_has_depth0_paren()) return;  // function declaration
    bool has_ident = false;
    for (const std::size_t k : stmt_) {
      if (tok(k).is_ident) {
        has_ident = true;
        break;
      }
    }
    if (!has_ident) return;
    report(kMutableGlobal, tok(stmt_.front()).line,
           "mutable namespace-scope variable (includes static/thread_local "
           "storage): shared state outlives a run and breaks replay; pass "
           "state explicitly or make it constexpr");
  }

  void analyze_member_decl() {
    if (cat_ != Category::kSrc || stmt_.empty()) return;
    // std-function-member: `std::function<...>` stored in a class (a data
    // member or a class-scope alias that members are declared with).
    // Parameters of member function declarations are fine — those show a
    // '(' outside the template argument list.
    for (std::size_t s = 0; s + 3 < stmt_.size(); ++s) {
      if (tok(stmt_[s]).text != "std" || tok(stmt_[s + 1]).text != "::" ||
          tok(stmt_[s + 2]).text != "function" ||
          tok(stmt_[s + 3]).text != "<") {
        continue;
      }
      // Find the matching '>' within the statement.
      int depth = 0;
      std::size_t close = stmt_.size();
      for (std::size_t j = s + 3; j < stmt_.size(); ++j) {
        const std::string& t = tok(stmt_[j]).text;
        if (t == "<") ++depth;
        if (t == ">" && --depth == 0) {
          close = j;
          break;
        }
      }
      bool paren_outside = false;
      for (std::size_t j = 0; j < stmt_.size(); ++j) {
        if (j >= s + 3 && j <= close) continue;
        if (tok(stmt_[j]).text == "(") {
          paren_outside = true;
          break;
        }
      }
      if (!paren_outside) {
        report(kStdFunctionMember, tok(stmt_[s]).line,
               "std::function stored in a class: each assignment may heap-"
               "allocate and every call is double-indirect; use "
               "util::InlineFunction (fixed capacity, never allocates) or "
               "util::TaskFunction (SBO + fallback)");
        return;
      }
    }
  }

  const std::string& path_;
  Category cat_;
  const AllowSet& allows_;
  std::vector<Finding>& findings_;
  const std::vector<Token>* tokens_ = nullptr;
  std::vector<ScopeFrame> stack_;
  std::vector<std::size_t> stmt_;
  std::set<std::string> reported_;
  const bool stream_rule_applies_;
};

}  // namespace

const std::vector<RuleInfo>& rule_table() { return kRules; }

bool rule_exists(std::string_view rule) {
  for (const RuleInfo& r : kRules) {
    if (rule == r.id) return true;
  }
  return false;
}

Category category_for_path(const std::string& path) {
  Category cat = Category::kSrc;  // unknown trees get the strictest rules
  std::string component;
  std::size_t best = std::string::npos;
  auto consider = [&](const std::string& name, Category c) {
    // Rightmost path *component* match wins.
    std::size_t pos = std::string::npos;
    std::size_t from = 0;
    while (true) {
      const std::size_t p = path.find(name, from);
      if (p == std::string::npos) break;
      const bool left_ok = p == 0 || path[p - 1] == '/' || path[p - 1] == '\\';
      const std::size_t after = p + name.size();
      const bool right_ok = after == path.size() || path[after] == '/' ||
                            path[after] == '\\';
      if (left_ok && right_ok) pos = p;
      from = p + 1;
    }
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
      cat = c;
      component = name;
    }
  };
  consider("src", Category::kSrc);
  consider("bench", Category::kBench);
  consider("tests", Category::kTests);
  return cat;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text, Category category,
                                 FileSet& files) {
  std::vector<Finding> findings;
  AllowSet allows;
  const std::string clean = strip(path, std::string(text), allows, findings);
  const std::vector<Token> tokens = tokenize(clean);
  Scanner scanner(path, category, allows, findings);
  scanner.run(tokens);
  lint_flow(path, tokens, text, category, allows, files, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text, Category category) {
  FileSet files;
  files.add_repo_roots_for(path);
  return lint_source(path, text, category, files);
}

bool lint_file(const std::string& path, const Category* forced,
               std::vector<Finding>& out, FileSet* files) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const Category cat = forced ? *forced : category_for_path(path);
  std::vector<Finding> f;
  if (files) {
    files->add_repo_roots_for(path);
    f = lint_source(path, buf.str(), cat, *files);
  } else {
    f = lint_source(path, buf.str(), cat);
  }
  out.insert(out.end(), f.begin(), f.end());
  return true;
}

}  // namespace rrsim::lint
