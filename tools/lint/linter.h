// rrsim_lint — determinism lint for the rrsim tree.
//
// The repo's load-bearing guarantee is that campaign/sweep outputs are
// bit-identical across worker counts, kernel rewrites and cache hits.
// Nothing *static* protected that guarantee: a PR could iterate an
// unordered container into a reduction, read the wall clock inside a
// simulation path, or key a map on a pointer, and the golden tests would
// only catch it if they happened to exercise the corrupted ordering.
// This linter is a dependency-free token/AST-lite scanner that bans the
// hazard patterns outright; intentional exceptions are annotated in the
// source with
//
//     // rrsim-lint-allow(<rule>[, <rule>...]): <justification>
//
// which suppresses the named rules on the comment's lines and on the
// line below it (consecutive // lines merge into one block, so wrapped
// justifications still cover the declaration underneath). The
// justification is mandatory — a bare allow is itself a finding — so
// every suppression documents *why* the hazard is not one.
//
// The scanner is deliberately conservative (it cannot prove an unordered
// container is never iterated, so it bans the type in checked trees) and
// deliberately simple: it strips comments/strings, tokenizes, and tracks
// just enough scope structure (namespace / class / function braces) to
// tell a namespace-scope variable from a local and a data member from a
// parameter. No compiler, no build graph, no third-party code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rrsim::lint {

/// Which tree a file belongs to. Some rules are scoped: wall-clock reads
/// and mutable globals are hazards in the simulator itself (src/), while
/// benches time themselves with steady_clock by design and tests create
/// fixtures freely.
enum class Category {
  kSrc,    ///< simulator sources — all rules apply
  kBench,  ///< benchmark harnesses — timing and fixtures allowed
  kTests,  ///< test sources — fixtures allowed
};

/// One lint hit.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rule ids with one-line summaries (for --list-rules and for
/// validating rrsim-lint-allow annotations).
const std::vector<RuleInfo>& rule_table();

/// True if `rule` names a known rule id.
bool rule_exists(std::string_view rule);

/// Infers the category from path components ("src" / "bench" / "tests");
/// the rightmost match wins, unknown trees get the strictest treatment.
Category category_for_path(const std::string& path);

class FileSet;  // flow.h — include resolution for the flow-aware pass

/// Lints one translation unit given as text. `path` is used only for
/// reporting (and to discover include roots for the flow-aware pass).
/// Findings are ordered by line. The FileSet overload shares memoized
/// header facts across calls; the two-pass flow rules resolve names
/// through it.
std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text, Category category);
std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text, Category category,
                                 FileSet& files);

/// Reads and lints a file, inferring the category from its path unless
/// `forced` is non-null. Returns false (and reports nothing) if the file
/// cannot be read. Pass a FileSet to reuse parsed header facts when
/// linting many files of one tree.
bool lint_file(const std::string& path, const Category* forced,
               std::vector<Finding>& out, FileSet* files = nullptr);

}  // namespace rrsim::lint
