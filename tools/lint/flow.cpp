// Flow-aware pass: per-file symbol tables + include-graph name
// resolution feeding the three tie-sensitivity rules (see flow.h for the
// rule semantics). The fact builder reuses the shared scope machine idea
// from linter.cpp: a brace-frame stack distinguishing namespace / class /
// function scopes, with declarations harvested at ';'. Everything is
// conservative-quiet: a name that does not resolve produces no finding
// (except the named-comparator case of unstable-sort, where "cannot
// analyze the comparator" is itself the hazard).

#include "flow.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>

namespace rrsim::lint {

// Fact types live in a named detail namespace (not anonymous) so the
// FileSet friend cache can traffic in them.
namespace flowdetail {

/// What we know about one struct/class definition.
struct StructFacts {
  std::map<std::string, std::string> fields;  ///< name -> space-joined type
  bool has_op_less = false;
  bool is_comparator = false;        ///< two-parameter operator() seen
  std::set<std::string> compared;    ///< fields in `x.F OP y.F` inside it
  int cmp_line = 0;                  ///< line of the operator() header
};

/// Per-file symbol table (pass A output).
struct FileFacts {
  std::vector<std::string> includes;               ///< quoted spellings
  std::map<std::string, StructFacts> structs;
  std::map<std::string, std::string> aliases;      ///< using A = rhs
  std::map<std::string, std::string> vars;         ///< decl name -> type
  std::map<std::string, std::string> auto_inits;   ///< auto var -> init expr
};

}  // namespace flowdetail

namespace {

using flowdetail::FileFacts;
using flowdetail::StructFacts;
using Tokens = std::vector<Token>;

constexpr char kTieSensitiveCompare[] = "tie-sensitive-compare";
constexpr char kIterationOrderEscape[] = "iteration-order-escape";
constexpr char kUnstableSort[] = "unstable-sort";

bool in_set(const std::string& t, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (t == s) return true;
  }
  return false;
}

bool time_like_field(const std::string& f) {
  return in_set(f, {"time", "submit_time", "start_time", "finish_time",
                    "end_time", "arrival", "arrival_time", "submit",
                    "deadline", "when", "timestamp", "t"});
}

bool discriminator_field(const std::string& f) {
  return in_set(f, {"seq", "id", "grid_id", "job_id", "rid", "uid", "key",
                    "ordinal", "index", "idx", "source", "dest", "rank",
                    "slot"});
}

bool keyword_token(const std::string& t) {
  return in_set(t, {"const", "constexpr", "static", "mutable", "inline",
                    "volatile", "auto", "return", "if", "else", "for",
                    "while", "do", "switch", "case", "break", "continue",
                    "struct", "class", "union", "enum", "using", "typedef",
                    "template", "typename", "operator", "namespace",
                    "public", "private", "protected", "friend", "virtual",
                    "override", "final", "noexcept", "new", "delete",
                    "throw", "default", "sizeof", "this", "goto",
                    "static_assert", "explicit", "extern", "co_return"});
}

std::size_t match_paren(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return open;
}

std::size_t match_brace(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}" && --depth == 0) return i;
  }
  return open;
}

/// Collects field names F appearing as `x.F OP y.F` (x != y, OP a
/// comparison) in the half-open token range [from, to).
void collect_compared(const Tokens& t, std::size_t from, std::size_t to,
                      std::set<std::string>& out) {
  to = std::min(to, t.size());
  for (std::size_t i = from; i + 6 < to; ++i) {
    if (!t[i].is_ident || t[i + 1].text != "." || !t[i + 2].is_ident) continue;
    std::size_t rhs = 0;
    const std::string& op = t[i + 3].text;
    if (op == "<" || op == ">") {
      rhs = i + 4;
      if (rhs < to && t[rhs].text == "=") ++rhs;  // <= / >=
    } else if ((op == "=" || op == "!") && i + 4 < to &&
               t[i + 4].text == "=") {
      rhs = i + 5;  // == / !=
    } else {
      continue;
    }
    if (rhs + 2 >= to) continue;
    if (!t[rhs].is_ident || t[rhs + 1].text != "." || !t[rhs + 2].is_ident) {
      continue;
    }
    if (t[i + 2].text != t[rhs + 2].text) continue;  // different fields
    if (t[i].text == t[rhs].text) continue;          // same object
    out.insert(t[i + 2].text);
  }
}

std::string join_tokens(const Tokens& t, const std::vector<std::size_t>& idx,
                        std::size_t from, std::size_t to) {
  std::string out;
  for (std::size_t k = from; k < to && k < idx.size(); ++k) {
    if (!out.empty()) out.push_back(' ');
    out += t[idx[k]].text;
  }
  return out;
}

std::vector<std::string> words_of(const std::string& s) {
  std::vector<std::string> w;
  std::istringstream in(s);
  std::string x;
  while (in >> x) w.push_back(x);
  return w;
}

// ---------------------------------------------------------------------------
// Pass A: facts builder
// ---------------------------------------------------------------------------

void harvest_includes(std::string_view raw, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t eol = raw.find('\n', pos);
    if (eol == std::string_view::npos) eol = raw.size();
    std::string_view line = raw.substr(pos, eol - pos);
    pos = eol + 1;
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (line.substr(i, 7) != "include") continue;
    const std::size_t q1 = line.find('"', i + 7);
    if (q1 == std::string_view::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string_view::npos) continue;
    out.emplace_back(line.substr(q1 + 1, q2 - q1 - 1));
  }
}

class FactsBuilder {
 public:
  FileFacts build(const Tokens& tokens, std::string_view raw) {
    tokens_ = &tokens;
    harvest_includes(raw, facts_.includes);
    for (std::size_t i = 0; i < tokens.size(); ++i) step(i);
    return std::move(facts_);
  }

 private:
  enum class Scope { kNamespace, kClass, kEnum, kFunction, kBlock, kInit };
  struct Frame {
    Scope kind;
    std::string cls;  ///< kClass: struct name
    std::vector<std::size_t> saved_stmt;
  };

  const Token& tok(std::size_t i) const { return (*tokens_)[i]; }

  Scope current() const {
    return stack_.empty() ? Scope::kNamespace : stack_.back().kind;
  }

  /// Nearest enclosing class name, empty when not in a class.
  std::string enclosing_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->cls;
    }
    return {};
  }

  bool stmt_has(const char* ident) const {
    for (const std::size_t k : stmt_) {
      if (tok(k).text == ident) return true;
    }
    return false;
  }

  bool stmt_has_depth0_paren() const {
    int angle = 0;
    for (std::size_t j = 0; j < stmt_.size(); ++j) {
      const std::string& t = tok(stmt_[j]).text;
      // `operator<` / `operator>`: comparison glyphs, not angle brackets.
      const bool named_op =
          j > 0 && tok(stmt_[j - 1]).text == "operator";
      if (t == "<" && !named_op) ++angle;
      if (t == ">" && !named_op && angle > 0) --angle;
      if (t == "(" && angle == 0) return true;
    }
    return false;
  }

  void step(std::size_t i) {
    const std::string& t = tok(i).text;
    if (t == "{") {
      Frame frame;
      const Scope parent = current();
      if (parent == Scope::kFunction || parent == Scope::kBlock ||
          parent == Scope::kInit || parent == Scope::kEnum) {
        frame.kind = Scope::kBlock;
      } else if (stmt_has("namespace")) {
        frame.kind = Scope::kNamespace;
      } else if (stmt_has("enum")) {
        frame.kind = Scope::kEnum;
      } else if (stmt_has_depth0_paren()) {
        frame.kind = Scope::kFunction;
        analyze_function_header(i);
      } else if (stmt_has("class") || stmt_has("struct") ||
                 stmt_has("union")) {
        frame.kind = Scope::kClass;
        frame.cls = struct_name_from_stmt();
        if (!frame.cls.empty()) facts_.structs[frame.cls];  // ensure entry
      } else if (!stmt_.empty()) {
        frame.kind = Scope::kInit;
        frame.saved_stmt = stmt_;
      } else {
        frame.kind = Scope::kBlock;
      }
      stack_.push_back(std::move(frame));
      stmt_.clear();
      return;
    }
    if (t == "}") {
      if (!stack_.empty()) {
        if (stack_.back().kind == Scope::kInit) {
          stmt_ = stack_.back().saved_stmt;
        } else {
          stmt_.clear();
        }
        stack_.pop_back();
      }
      return;
    }
    if (t == ";") {
      mark_operator_less();  // declaration-only operator< still counts
      if (current() == Scope::kClass) {
        analyze_decl(/*member=*/true);
      } else if (current() == Scope::kNamespace ||
                 current() == Scope::kFunction ||
                 current() == Scope::kBlock) {
        analyze_decl(/*member=*/false);
      }
      stmt_.clear();
      return;
    }
    stmt_.push_back(i);
  }

  /// The identifier after the *last* struct/class/union keyword in the
  /// statement (skipping template headers' `class T`).
  std::string struct_name_from_stmt() const {
    std::size_t key = stmt_.size();
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      const std::string& t = tok(stmt_[k]).text;
      if (t == "struct" || t == "class" || t == "union") key = k;
    }
    for (std::size_t k = key + 1; k < stmt_.size(); ++k) {
      if (tok(stmt_[k]).is_ident && !keyword_token(tok(stmt_[k]).text)) {
        return tok(stmt_[k]).text;
      }
    }
    return {};
  }

  /// If stmt_ is an operator< header (definition or declaration), marks
  /// the enclosing class — or, free form, any already-known struct named
  /// in the parameter list — as totally ordered. Returns true when it
  /// consumed the statement as an operator<.
  bool mark_operator_less() {
    std::size_t op = stmt_.size();
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      if (tok(stmt_[k]).text == "operator") op = k;
    }
    if (op == stmt_.size()) return false;
    if (op + 1 >= stmt_.size() || tok(stmt_[op + 1]).text != "<" ||
        (op + 2 < stmt_.size() && tok(stmt_[op + 2]).text != "(")) {
      return false;
    }
    const std::string cls = enclosing_class();
    if (!cls.empty()) {
      facts_.structs[cls].has_op_less = true;
    } else {
      for (std::size_t k = op + 2; k < stmt_.size(); ++k) {
        const auto it = facts_.structs.find(tok(stmt_[k]).text);
        if (it != facts_.structs.end()) it->second.has_op_less = true;
      }
    }
    return true;
  }

  /// Called when a function-definition '{' opens (stmt_ is the header).
  /// Detects operator< and comparator operator() definitions.
  void analyze_function_header(std::size_t brace) {
    if (mark_operator_less()) return;
    std::size_t op = stmt_.size();
    for (std::size_t k = 0; k < stmt_.size(); ++k) {
      if (tok(stmt_[k]).text == "operator") op = k;
    }
    if (op == stmt_.size()) return;
    const std::string cls = enclosing_class();
    if (cls.empty()) return;
    if (op + 2 >= stmt_.size() || tok(stmt_[op + 1]).text != "(" ||
        tok(stmt_[op + 2]).text != ")") {
      return;
    }
    // operator() — find the parameter list (the next '(' after the
    // `operator ( )` tokens) and count its top-level commas.
    std::size_t params = stmt_.size();
    for (std::size_t k = op + 3; k < stmt_.size(); ++k) {
      if (tok(stmt_[k]).text == "(") {
        params = k;
        break;
      }
    }
    if (params == stmt_.size()) return;
    int paren = 0;
    int angle = 0;
    int commas = 0;
    for (std::size_t k = params; k < stmt_.size(); ++k) {
      const std::string& t = tok(stmt_[k]).text;
      if (t == "(") ++paren;
      if (t == ")" && --paren == 0) break;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "," && paren == 1 && angle == 0) ++commas;
    }
    if (commas != 1) return;  // not a binary comparator
    StructFacts& sf = facts_.structs[cls];
    sf.is_comparator = true;
    sf.cmp_line = tok(stmt_[op]).line;
    collect_compared(*tokens_, brace + 1, match_brace(*tokens_, brace),
                     sf.compared);
  }

  /// Harvests a declaration at ';' — member fields (member=true) or
  /// using-aliases / simple variables. Paren-bearing statements (function
  /// declarations, for-headers, constructor-style initializers) and
  /// expression statements are skipped.
  void analyze_decl(bool member) {
    if (stmt_.empty()) return;
    // Skip leading access specifiers merged from `public:` etc.
    std::size_t begin = 0;
    while (begin + 1 < stmt_.size() &&
           in_set(tok(stmt_[begin]).text, {"public", "private", "protected"}) &&
           tok(stmt_[begin + 1]).text == ":") {
      begin += 2;
    }
    if (begin >= stmt_.size()) return;
    const std::string& first = tok(stmt_[begin]).text;
    if (first == "using") {
      // using A = rhs;
      std::size_t eq = stmt_.size();
      for (std::size_t k = begin; k < stmt_.size(); ++k) {
        if (tok(stmt_[k]).text == "=") {
          eq = k;
          break;
        }
      }
      if (eq == stmt_.size() || eq == begin + 1) return;
      if (!tok(stmt_[eq - 1]).is_ident) return;
      facts_.aliases[tok(stmt_[eq - 1]).text] =
          join_tokens(*tokens_, stmt_, eq + 1, stmt_.size());
      return;
    }
    for (const char* skip :
         {"return", "throw", "delete", "goto", "break", "continue", "case",
          "typedef", "friend", "template", "static_assert", "operator",
          "namespace", "extern", "enum", "struct", "class", "union"}) {
      if (stmt_has(skip)) return;
    }
    if (stmt_has_depth0_paren()) return;
    // Find the declared name: the identifier before the first top-level
    // '=', or the last identifier of the statement.
    std::size_t eq = stmt_.size();
    for (std::size_t k = begin; k < stmt_.size(); ++k) {
      if (tok(stmt_[k]).text == "=") {
        // Reject compound/comparison forms (+=, ==, <=, ...): the token
        // before a declaration's '=' is the declared identifier.
        eq = k;
        break;
      }
    }
    std::size_t name_idx = stmt_.size();
    if (eq != stmt_.size()) {
      if (eq == begin || !tok(stmt_[eq - 1]).is_ident) return;
      name_idx = eq - 1;
    } else {
      for (std::size_t k = stmt_.size(); k-- > begin;) {
        if (tok(stmt_[k]).is_ident) {
          name_idx = k;
          break;
        }
      }
      if (name_idx == stmt_.size()) return;
    }
    const std::string name = tok(stmt_[name_idx]).text;
    if (keyword_token(name)) return;
    // The type is everything before the name; require at least one
    // identifier there (otherwise this is an assignment, not a decl).
    bool type_ident = false;
    for (std::size_t k = begin; k < name_idx; ++k) {
      if (tok(stmt_[k]).is_ident) type_ident = true;
    }
    if (!type_ident) return;
    const std::string type = join_tokens(*tokens_, stmt_, begin, name_idx);
    if (member) {
      const std::string cls = enclosing_class();
      if (cls.empty()) return;
      facts_.structs[cls].fields[name] = type;
    } else {
      facts_.vars[name] = type;
    }
    if (eq != stmt_.size() && type.find("auto") != std::string::npos) {
      facts_.auto_inits[name] =
          join_tokens(*tokens_, stmt_, eq + 1, stmt_.size());
    }
  }

  const Tokens* tokens_ = nullptr;
  FileFacts facts_;
  std::vector<Frame> stack_;
  std::vector<std::size_t> stmt_;
};

FileFacts build_facts(const Tokens& tokens, std::string_view raw) {
  return FactsBuilder().build(tokens, raw);
}

}  // namespace

// ---------------------------------------------------------------------------
// FileSet
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

void FileSet::add_memory(std::string include, std::string text) {
  memory_[std::move(include)] = std::move(text);
}

void FileSet::add_include_root(std::string dir) {
  if (std::find(roots_.begin(), roots_.end(), dir) == roots_.end()) {
    roots_.push_back(std::move(dir));
  }
}

void FileSet::add_repo_roots_for(const std::string& path) {
  std::error_code ec;
  fs::path p = fs::absolute(fs::path(path), ec);
  if (ec) return;
  for (fs::path dir = p.parent_path();; dir = dir.parent_path()) {
    if (fs::exists(dir / "src", ec) && fs::is_directory(dir / "src", ec)) {
      const std::string root = dir.string();
      if (std::find(probed_roots_.begin(), probed_roots_.end(), root) !=
          probed_roots_.end()) {
        return;
      }
      probed_roots_.push_back(root);
      for (const auto& entry : fs::directory_iterator(dir / "src", ec)) {
        if (!entry.is_directory(ec)) continue;
        const fs::path inc = entry.path() / "include";
        if (fs::exists(inc, ec)) add_include_root(inc.string());
      }
      return;
    }
    if (dir == dir.parent_path()) return;
  }
}

const std::string* FileSet::resolve(const std::string& include) {
  const auto m = memory_.find(include);
  if (m != memory_.end()) return &m->second;
  auto c = disk_cache_.find(include);
  if (c == disk_cache_.end()) {
    std::optional<std::string> content;
    for (const std::string& root : roots_) {
      std::ifstream in(root + "/" + include, std::ios::binary);
      if (!in) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      content = buf.str();
      break;
    }
    c = disk_cache_.emplace(include, std::move(content)).first;
  }
  return c->second ? &*c->second : nullptr;
}

/// Private-access shim: lazily builds and memoizes per-include facts
/// inside the FileSet (declared friend in flow.h).
struct FactsCache {
  static const flowdetail::FileFacts* get(FileSet& files,
                                          const std::string& include) {
    const auto it = files.facts_cache_.find(include);
    if (it != files.facts_cache_.end()) {
      return static_cast<const flowdetail::FileFacts*>(it->second);
    }
    const flowdetail::FileFacts* facts = nullptr;
    if (const std::string* text = files.resolve(include)) {
      AllowSet allows;
      std::vector<Finding> sink;
      const std::string clean = strip(include, *text, allows, sink);
      auto* owned = new flowdetail::FileFacts(
          build_facts(tokenize(clean), *text));
      files.facts_owned_.push_back(owned);
      facts = owned;
    }
    files.facts_cache_.emplace(include, facts);
    return facts;
  }
};

FileSet::~FileSet() {
  for (const void* p : facts_owned_) {
    delete static_cast<const flowdetail::FileFacts*>(p);
  }
}

// ---------------------------------------------------------------------------
// Pass B: name resolution + rules
// ---------------------------------------------------------------------------

namespace {

/// Facts of the linted file plus its transitive quoted includes, searched
/// self-first (the nearer definition wins).
struct Resolver {
  std::vector<const FileFacts*> layers;

  const std::string* var_type(const std::string& name) const {
    for (const FileFacts* f : layers) {
      const auto it = f->vars.find(name);
      if (it != f->vars.end()) return &it->second;
    }
    return nullptr;
  }
  /// Flat field lookup: the type of a field named `name` in *any* known
  /// struct (used for `obj.field` where obj's type is unknown).
  const std::string* field_type(const std::string& name) const {
    for (const FileFacts* f : layers) {
      for (const auto& [cls, sf] : f->structs) {
        const auto it = sf.fields.find(name);
        if (it != sf.fields.end()) return &it->second;
      }
    }
    return nullptr;
  }
  const StructFacts* struct_of(const std::string& name) const {
    for (const FileFacts* f : layers) {
      const auto it = f->structs.find(name);
      if (it != f->structs.end()) return &it->second;
    }
    return nullptr;
  }
  const std::string* alias_of(const std::string& name) const {
    for (const FileFacts* f : layers) {
      const auto it = f->aliases.find(name);
      if (it != f->aliases.end()) return &it->second;
    }
    return nullptr;
  }
  const std::string* auto_init(const std::string& name) const {
    for (const FileFacts* f : layers) {
      const auto it = f->auto_inits.find(name);
      if (it != f->auto_inits.end()) return &it->second;
    }
    return nullptr;
  }
};

Resolver make_resolver(const FileFacts& self, FileSet& files) {
  Resolver r;
  r.layers.push_back(&self);
  std::set<std::string> visited;
  std::vector<std::string> queue(self.includes.begin(), self.includes.end());
  for (std::size_t q = 0; q < queue.size() && r.layers.size() < 64; ++q) {
    const std::string inc = queue[q];
    if (!visited.insert(inc).second) continue;
    const FileFacts* f = FactsCache::get(files, inc);
    if (!f) continue;
    r.layers.push_back(f);
    for (const std::string& sub : f->includes) queue.push_back(sub);
  }
  return r;
}

bool arithmetic_words(const std::vector<std::string>& w) {
  bool any = false;
  for (const std::string& x : w) {
    if (x == "std" || x == "::" || x == "const") continue;
    if (!in_set(x, {"double", "float", "int", "long", "short", "char",
                    "bool", "unsigned", "signed", "size_t", "ptrdiff_t",
                    "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t",
                    "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
                    "intptr_t"})) {
      return false;
    }
    any = true;
  }
  return any;
}

/// Extracts the element type from a sequence-container type string, empty
/// when the container shape is not recognized.
std::string container_element(const std::string& type) {
  const std::vector<std::string> w = words_of(type);
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    if (!in_set(w[i], {"vector", "deque", "array"}) || w[i + 1] != "<") {
      continue;
    }
    int angle = 0;
    std::string elem;
    for (std::size_t k = i + 1; k < w.size(); ++k) {
      if (w[k] == "<" && ++angle == 1) continue;
      if (w[k] == ">" && --angle == 0) break;
      if (w[k] == "," && angle == 1) break;  // array<T, N>: stop at N
      if (!elem.empty()) elem.push_back(' ');
      elem += w[k];
    }
    return elem;
  }
  return {};
}

enum class SortVerdict { kTotal, kFlag, kUnknown };

/// Classifies a comparator-less std::sort over elements of type `elem`.
SortVerdict element_verdict(const Resolver& r, std::string elem,
                            std::string* detail, int depth = 0) {
  if (depth > 4) return SortVerdict::kUnknown;
  std::vector<std::string> w = words_of(elem);
  // Collapse namespace qualification (`rrsim :: Rec` → `Rec`): struct
  // facts are keyed by the unqualified name the definition introduced.
  for (std::size_t i = 0; i < w.size();) {
    if (w[i] == "::") {
      w.erase(w.begin() + static_cast<std::ptrdiff_t>(i));
      if (i > 0) {
        w.erase(w.begin() + static_cast<std::ptrdiff_t>(i - 1));
        --i;
      }
    } else {
      ++i;
    }
  }
  // Drop qualifiers.
  w.erase(std::remove_if(w.begin(), w.end(),
                         [](const std::string& x) {
                           return x == "const" || x == "&" || x == "std";
                         }),
          w.end());
  if (w.empty()) return SortVerdict::kUnknown;
  if (arithmetic_words(w)) return SortVerdict::kTotal;
  if (w[0] == "string" || w[0] == "string_view") return SortVerdict::kTotal;
  if (w[0] == "pair" || w[0] == "tuple") {
    std::vector<std::string> inner(w.begin() + 1, w.end());
    inner.erase(std::remove_if(inner.begin(), inner.end(),
                               [](const std::string& x) {
                                 return x == "<" || x == ">" || x == ",";
                               }),
                inner.end());
    return arithmetic_words(inner) ? SortVerdict::kTotal
                                   : SortVerdict::kUnknown;
  }
  if (w.size() != 1) return SortVerdict::kUnknown;
  if (const std::string* alias = r.alias_of(w[0])) {
    return element_verdict(r, *alias, detail, depth + 1);
  }
  if (const StructFacts* sf = r.struct_of(w[0])) {
    if (sf->has_op_less) return SortVerdict::kTotal;
    for (const auto& [fname, ftype] : sf->fields) {
      (void)ftype;
      if (time_like_field(fname)) {
        if (detail) *detail = w[0] + "::" + fname;
        return SortVerdict::kFlag;
      }
    }
  }
  return SortVerdict::kUnknown;
}

/// Resolves the container variable `V` of a `std::sort(V.begin(), ...)`
/// call to its declared type, following one `auto x = obj.field` hop.
const std::string* container_type(const Resolver& r, const std::string& v) {
  const std::string* type = r.var_type(v);
  if (!type) type = r.field_type(v);
  if (type && type->find("auto") != std::string::npos) {
    if (const std::string* init = r.auto_init(v)) {
      // `auto x = obj.field;` — adopt the field's declared type.
      const std::vector<std::string> w = words_of(*init);
      if (w.size() == 3 && w[1] == ".") return r.field_type(w[2]);
      return nullptr;
    }
    return nullptr;
  }
  return type;
}

class FlowPass {
 public:
  FlowPass(const std::string& path, const AllowSet& allows,
           std::vector<Finding>& findings, const FileFacts& self,
           Resolver resolver)
      : path_(path),
        allows_(allows),
        findings_(findings),
        self_(self),
        r_(std::move(resolver)) {}

  void run(const Tokens& tokens) {
    tokens_ = &tokens;
    functor_comparators();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      lambda_comparators(i);
      iteration_escape(i);
      unstable_sort(i);
    }
  }

 private:
  const Token& tok(std::size_t i) const { return (*tokens_)[i]; }
  std::size_t count() const { return tokens_->size(); }

  void report(const char* rule, int line, const std::string& msg) {
    if (allows_.allows(rule, line)) return;
    if (!reported_.insert(std::string(rule) + "#" + std::to_string(line))
             .second) {
      return;
    }
    findings_.push_back({path_, line, rule, msg});
  }

  bool std_qualified(std::size_t i) const {
    return i >= 2 && tok(i - 1).text == "::" && tok(i - 2).text == "std";
  }

  static bool tie_sensitive(const std::set<std::string>& compared) {
    if (compared.empty()) return false;
    bool has_time = false;
    for (const std::string& f : compared) {
      if (time_like_field(f)) has_time = true;
      if (discriminator_field(f)) return false;
    }
    return has_time;
  }

  static std::string field_list(const std::set<std::string>& compared) {
    std::string out;
    for (const std::string& f : compared) {
      if (!out.empty()) out += ", ";
      out += f;
    }
    return out;
  }

  // Rule 1a: comparator functors defined in this file.
  void functor_comparators() {
    for (const auto& [name, sf] : self_.structs) {
      if (!sf.is_comparator || !tie_sensitive(sf.compared)) continue;
      report(kTieSensitiveCompare, sf.cmp_line,
             "comparator " + name + " orders by time-like field(s) [" +
                 field_list(sf.compared) +
                 "] with no discriminating field: equal timestamps fall "
                 "back to container order; add a final tie-break on a "
                 "stable id (seq, job id, ...)");
    }
  }

  // Rule 1b: lambda comparators handed to unstable sort-like algorithms.
  void lambda_comparators(std::size_t i) {
    if (!tok(i).is_ident ||
        !in_set(tok(i).text, {"sort", "nth_element", "partial_sort",
                              "make_heap", "push_heap", "pop_heap",
                              "sort_heap"}) ||
        !std_qualified(i) || i + 1 >= count() || tok(i + 1).text != "(") {
      return;
    }
    const std::size_t close = match_paren(*tokens_, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (tok(j).text != "[") continue;
      // Capture list, optional params, then the body braces.
      std::size_t k = j;
      while (k < close && tok(k).text != "]") ++k;
      while (k < close && tok(k).text != "{") ++k;
      if (k >= close) return;
      const std::size_t body_end = match_brace(*tokens_, k);
      std::set<std::string> compared;
      collect_compared(*tokens_, k + 1, body_end, compared);
      if (tie_sensitive(compared)) {
        report(kTieSensitiveCompare, tok(j).line,
               "comparator lambda passed to std::" + tok(i).text +
                   " orders by time-like field(s) [" + field_list(compared) +
                   "] with no discriminating field: ties fall back to "
                   "container order; add a stable-id tie-break or use "
                   "std::stable_sort");
      }
      j = body_end;
    }
  }

  // Rule 2: FlatHashMap::for_each bodies whose visit order escapes.
  void iteration_escape(std::size_t i) {
    if (tok(i).text != "for_each" || i < 2 || tok(i - 1).text != "." ||
        !tok(i - 2).is_ident || i + 1 >= count() ||
        tok(i + 1).text != "(") {
      return;
    }
    const std::string& v = tok(i - 2).text;
    const std::string* type = r_.var_type(v);
    if (!type) type = r_.field_type(v);
    if (!type || type->find("FlatHashMap") == std::string::npos) return;
    const std::size_t close = match_paren(*tokens_, i + 1);
    // Locate the callback's body.
    std::size_t k = i + 2;
    while (k < close && tok(k).text != "{") ++k;
    if (k >= close) return;
    const std::size_t body_end = match_brace(*tokens_, k);
    for (std::size_t j = k + 1; j < body_end; ++j) {
      const Token& t = tok(j);
      if (!t.is_ident) continue;
      if (in_set(t.text, {"schedule_at", "schedule_in", "post"}) &&
          j + 1 < body_end && tok(j + 1).text == "(") {
        report(kIterationOrderEscape, t.line,
               "event posted from inside " + v +
                   ".for_each: FlatHashMap visit order is hash-order, so "
                   "the event sequence inherits it; collect into a sorted "
                   "buffer first");
        continue;
      }
      if (in_set(t.text, {"push_back", "emplace_back"}) && j >= 1 &&
          tok(j - 1).text == "." && j + 1 < body_end &&
          tok(j + 1).text == "(") {
        report(kIterationOrderEscape, t.line,
               "append inside " + v +
                   ".for_each: the output sequence inherits hash-order; "
                   "sort the collected entries by a stable key before use");
        continue;
      }
      if (j + 2 < body_end && tok(j + 1).text == "+" &&
          tok(j + 2).text == "=") {
        const std::string* at = (j >= 1 && tok(j - 1).text == ".")
                                    ? r_.field_type(t.text)
                                    : r_.var_type(t.text);
        if (!at) at = r_.field_type(t.text);
        if (at && (at->find("double") != std::string::npos ||
                   at->find("float") != std::string::npos)) {
          report(kIterationOrderEscape, t.line,
                 "floating-point accumulation into '" + t.text +
                     "' inside " + v +
                     ".for_each: float addition is not associative, so "
                     "the sum depends on hash-order; accumulate into a "
                     "sorted buffer or an integer domain");
        }
      }
    }
  }

  // Rule 3: std::sort without a provably total order.
  void unstable_sort(std::size_t i) {
    if (tok(i).text != "sort" || !std_qualified(i) || i + 1 >= count() ||
        tok(i + 1).text != "(") {
      return;
    }
    const std::size_t open = i + 1;
    const std::size_t close = match_paren(*tokens_, open);
    // Top-level commas split the arguments.
    std::vector<std::size_t> commas;
    int paren = 0;
    int angle = 0;
    for (std::size_t j = open; j <= close; ++j) {
      const std::string& t = tok(j).text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "," && paren == 1 && angle == 0) commas.push_back(j);
    }
    if (commas.size() == 1) {
      // Comparator-less: resolve the container's element type.
      if (open + 1 >= count() || !tok(open + 1).is_ident) return;
      if (open + 3 >= count() || tok(open + 2).text != "." ||
          !in_set(tok(open + 3).text, {"begin", "rbegin"})) {
        return;
      }
      const std::string* type = container_type(r_, tok(open + 1).text);
      if (!type) return;
      const std::string elem = container_element(*type);
      if (elem.empty()) return;
      std::string detail;
      if (element_verdict(r_, elem, &detail) == SortVerdict::kFlag) {
        report(kUnstableSort, tok(i).line,
               "std::sort over elements with time-like field " + detail +
                   " and no operator<: tied keys land in implementation-"
                   "defined order; use std::stable_sort or a comparator "
                   "with a stable-id tie-break");
      }
      return;
    }
    if (commas.size() != 2) return;
    // Explicit comparator: judge only named comparators we cannot see.
    std::size_t a = commas[1] + 1;
    if (a >= close) return;
    if (tok(a).text == "[") return;  // lambda — rule 1b's job
    if (tok(a).text == "std" && a + 2 < close &&
        in_set(tok(a + 2).text, {"less", "greater"})) {
      return;
    }
    if (!tok(a).is_ident) return;
    const std::string name = tok(a).text;
    const StructFacts* sf = r_.struct_of(name);
    if (sf && sf->is_comparator) return;  // analyzable — rule 1a's job
    if (sf || !r_.var_type(name)) {
      // A struct without a visible operator(), or a name we cannot
      // resolve at all: totality is unprovable.
      report(kUnstableSort, tok(i).line,
             "std::sort with comparator '" + name +
                 "' that the linter cannot analyze: prove the order is "
                 "total (tie-break on a stable id) or use "
                 "std::stable_sort");
    }
  }

  const std::string& path_;
  const AllowSet& allows_;
  std::vector<Finding>& findings_;
  const FileFacts& self_;
  Resolver r_;
  const Tokens* tokens_ = nullptr;
  std::set<std::string> reported_;
};

}  // namespace

void lint_flow(const std::string& path, const std::vector<Token>& tokens,
               std::string_view raw_text, Category category,
               const AllowSet& allows, FileSet& files,
               std::vector<Finding>& findings) {
  if (category != Category::kSrc) return;
  const FileFacts self = build_facts(tokens, raw_text);
  FlowPass pass(path, allows, findings, self, make_resolver(self, files));
  pass.run(tokens);
}

}  // namespace rrsim::lint
