#include "scan.h"

#include <cctype>

namespace rrsim::lint {

namespace {

constexpr char kBareAllow[] = "bare-allow";

/// Collapses a comment block's text after the justification colon into a
/// single line: '//' prefixes, newlines and runs of whitespace become one
/// space each.
std::string collapse_justification(std::string_view text) {
  std::string out;
  bool space_pending = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      ++i;
      space_pending = !out.empty();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      space_pending = !out.empty();
      continue;
    }
    if (space_pending) out.push_back(' ');
    space_pending = false;
    out.push_back(c);
  }
  return out;
}

void parse_annotations(const std::string& path, const std::string& comment,
                       int first_line, int last_line, AllowSet& allows,
                       std::vector<Finding>& findings) {
  const std::string kTag = "rrsim-lint-allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = comment.find(')', open);
    pos = open;
    if (close == std::string::npos) {
      findings.push_back({path, first_line, kBareAllow,
                          "unterminated rrsim-lint-allow annotation"});
      return;
    }
    // Split the rule list.
    std::vector<std::string> rules;
    std::string cur;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!cur.empty()) rules.push_back(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur.push_back(c);
      }
    }
    bool ok = !rules.empty();
    for (const std::string& r : rules) {
      if (!rule_exists(r)) {
        findings.push_back({path, first_line, kBareAllow,
                            "rrsim-lint-allow names unknown rule '" + r +
                                "' (see rrsim_lint --list-rules)"});
        ok = false;
      }
    }
    // A justification is mandatory: ':' after the ')' followed by text.
    std::size_t j = close + 1;
    while (j < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[j]))) {
      ++j;
    }
    bool justified = false;
    std::size_t just_start = comment.size();
    if (j < comment.size() && comment[j] == ':') {
      ++j;
      just_start = j;
      while (j < comment.size()) {
        if (!std::isspace(static_cast<unsigned char>(comment[j]))) {
          justified = true;
          break;
        }
        ++j;
      }
    }
    if (!justified) {
      findings.push_back(
          {path, first_line, kBareAllow,
           "rrsim-lint-allow needs a justification: "
           "// rrsim-lint-allow(rule): <why this is not a hazard>"});
      ok = false;
    }
    if (ok) {
      for (int line = first_line; line <= last_line + 1; ++line) {
        for (const std::string& r : rules) allows.by_line[line].insert(r);
      }
      AllowRecord rec;
      rec.line = first_line;
      rec.rules = rules;
      rec.justification = collapse_justification(
          std::string_view(comment).substr(just_start));
      allows.records.push_back(std::move(rec));
    }
    pos = close;
  }
}

}  // namespace

bool has_path_component(const std::string& path, std::string_view name) {
  std::size_t from = 0;
  while (true) {
    const std::size_t p = path.find(name, from);
    if (p == std::string::npos) return false;
    const bool left_ok = p == 0 || path[p - 1] == '/' || path[p - 1] == '\\';
    const std::size_t after = p + name.size();
    const bool right_ok =
        after == path.size() || path[after] == '/' || path[after] == '\\';
    if (left_ok && right_ok) return true;
    from = p + 1;
  }
}

std::string strip(const std::string& path, std::string_view text,
                  AllowSet& allows, std::vector<Finding>& findings) {
  std::string out(text.size(), ' ');
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = text.size();
  auto copy_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (text[k] == '\n') {
        out[k] = '\n';
        ++line;
      }
    }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i;
      // Line comment, honoring backslash continuations. Consecutive
      // whole-line // comments merge into one block, so an allow whose
      // justification wraps still covers the declaration below the block.
      for (;;) {
        while (j < n) {
          if (text[j] == '\n' && (j == 0 || text[j - 1] != '\\')) break;
          ++j;
        }
        std::size_t k = j;
        if (k < n) ++k;  // past the newline
        while (k < n && (text[k] == ' ' || text[k] == '\t')) ++k;
        if (k + 1 < n && text[k] == '/' && text[k + 1] == '/') {
          j = k;
          continue;
        }
        break;
      }
      std::string block(text.substr(i, j - i));
      copy_newlines(i, j);  // leaves `line` at the block's last line
      parse_annotations(path, block, start_line, line, allows, findings);
      i = j;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = text.find("*/", i + 2);
      if (j == std::string_view::npos) j = n;
      const std::size_t end = std::min(j + 2, n);
      copy_newlines(i, end);
      parse_annotations(path, std::string(text.substr(i, end - i)),
                        start_line, line, allows, findings);
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                               text[i - 1])) &&
                           text[i - 1] != '_'))) {
      // Raw string literal R"delim( ... )delim".
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(text.substr(i + 2, d - (i + 2))) + "\"";
      std::size_t j = text.find(closer, d);
      j = (j == std::string_view::npos) ? n : j + closer.size();
      out[i] = '"';
      if (j - 1 < n) out[j - 1] = '"';
      copy_newlines(i, j);
      i = j;
    } else if (c == '"' || c == '\'') {
      out[i] = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n) out[j] = c;
      copy_newlines(i, j + 1);
      i = std::min(j + 1, n);
    } else {
      out[i] = c;
      if (c == '\n') ++line;
      ++i;
    }
  }
  return out;
}

std::vector<Token> tokenize(const std::string& clean) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = clean.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = clean[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: skip to end of line (with continuations).
      while (i < n) {
        if (clean[i] == '\n') {
          if (i > 0 && clean[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(clean[j])) ||
                       clean[j] == '_')) {
        ++j;
      }
      tokens.push_back({clean.substr(i, j - i), line, true});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(clean[j])) ||
                       clean[j] == '.' || clean[j] == '\'')) {
        ++j;
      }
      tokens.push_back({clean.substr(i, j - i), line, false});
      i = j;
    } else if (c == ':' && i + 1 < n && clean[i + 1] == ':') {
      tokens.push_back({"::", line, false});
      i += 2;
    } else {
      tokens.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return tokens;
}

}  // namespace rrsim::lint
