// Shared scanning layer of rrsim_lint: comment/literal stripping with
// rrsim-lint-allow harvesting, and the token stream both the token-rule
// scanner (linter.cpp) and the flow-aware analyzer (flow.cpp) consume.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "linter.h"

namespace rrsim::lint {

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

/// One rrsim-lint-allow annotation, as written (valid ones only).
struct AllowRecord {
  int line = 0;  ///< first line of the comment block
  std::vector<std::string> rules;
  std::string justification;  ///< collapsed to one line
};

struct AllowSet {
  /// line -> rules suppressed on that line (annotations cover their own
  /// line(s) and the next line, so a comment above a declaration works).
  std::map<int, std::set<std::string>> by_line;
  /// Annotation inventory in source order (for --list-allows).
  std::vector<AllowRecord> records;

  bool allows(const std::string& rule, int line) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

/// True if `name` appears as a whole path component of `path`.
bool has_path_component(const std::string& path, std::string_view name);

/// Replaces comments and string/char literal *contents* with spaces
/// (newlines preserved, so token line numbers match the original), while
/// harvesting rrsim-lint-allow annotations from comment text. Malformed
/// annotations are reported as bare-allow findings.
std::string strip(const std::string& path, std::string_view text,
                  AllowSet& allows, std::vector<Finding>& findings);

/// Tokenizes stripped source (preprocessor directives skipped).
std::vector<Token> tokenize(const std::string& clean);

}  // namespace rrsim::lint
