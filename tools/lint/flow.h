// Flow-aware pass of rrsim_lint (two-pass, include-graph aware).
//
// The token rules in linter.cpp judge each line in isolation; the three
// rules here need to know what things *are*:
//
//   tie-sensitive-compare   a comparator (functor operator() or a lambda
//                           handed to std::sort / nth_element / *_heap)
//                           that compares time-like fields without a
//                           discriminating field (seq / id / ...): equal
//                           timestamps then order by insertion accident.
//                           std::stable_sort comparators are exempt —
//                           stability is the discriminator.
//   iteration-order-escape  a util::FlatHashMap::for_each body that lets
//                           the table's (hash-order) iteration sequence
//                           escape: posting events, appending to a
//                           sequence, or accumulating into a float
//                           (float addition is not associative, so the
//                           sum depends on visit order). Integral
//                           accumulation and RRSIM_CHECK-style asserts
//                           stay silent.
//   unstable-sort           a comparator-less std::sort whose element
//                           type resolves to a struct with a time-like
//                           field and no operator< in sight (ties left
//                           to the implementation's pivoting), or a
//                           std::sort whose named comparator cannot be
//                           resolved for analysis. Arithmetic, string,
//                           and pair/tuple-of-integral elements are
//                           provably total; unresolvable element types
//                           stay silent (conservative-quiet — the token
//                           pass has no evidence either way).
//
// Pass A builds a per-file symbol table (struct fields and their types,
// using-aliases, variable/member declarations, comparator functors and
// their compared fields, operator< presence, quoted includes). Pass B
// resolves names through the file's own facts plus the facts of its
// transitively-included rrsim headers (resolved against src/*/include
// roots discovered from the repo layout, memoized in the FileSet) and
// applies the three rules. All three fire in src/ only.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "linter.h"
#include "scan.h"

namespace rrsim::lint {

/// Source access for the flow pass: an in-memory overlay (tests,
/// fixtures) plus include roots searched for quoted includes on disk.
/// Resolved contents and per-file facts are memoized for the lifetime of
/// the set, so linting a whole tree parses each shared header once.
class FileSet {
 public:
  /// Registers an in-memory file under its include spelling (e.g.
  /// "rrsim/grid/gateway.h"). Overlay entries win over disk.
  void add_memory(std::string include, std::string text);

  /// Adds a directory searched as `<dir>/<include spelling>`.
  void add_include_root(std::string dir);

  /// Discovers include roots for the repository containing `path`: the
  /// nearest ancestor with a src/ directory contributes every
  /// src/*/include below it. Safe to call per file — roots dedupe.
  void add_repo_roots_for(const std::string& path);

  /// Resolved content of an include spelling, nullptr when unknown.
  const std::string* resolve(const std::string& include);

 private:
  friend struct FactsCache;
  std::map<std::string, std::string> memory_;
  std::vector<std::string> roots_;
  std::vector<std::string> probed_roots_;  ///< repo roots already scanned
  std::map<std::string, std::optional<std::string>> disk_cache_;
  /// include spelling -> parsed facts, lazily built (held via pimpl so
  /// flow.cpp owns the facts type).
  std::map<std::string, const void*> facts_cache_;
  std::vector<const void*> facts_owned_;

 public:
  ~FileSet();
  FileSet() = default;
  FileSet(const FileSet&) = delete;
  FileSet& operator=(const FileSet&) = delete;
};

/// Runs the flow-aware rules over one translation unit. `allows` is the
/// annotation set harvested by strip() for this file. Findings are
/// appended unsorted (the caller sorts).
void lint_flow(const std::string& path, const std::vector<Token>& tokens,
               std::string_view raw_text, Category category,
               const AllowSet& allows, FileSet& files,
               std::vector<Finding>& findings);

}  // namespace rrsim::lint
