// rrsim_lint CLI.
//
// Usage:
//   rrsim_lint [--treat-as=src|bench|tests] <path>...   lint files/trees
//   rrsim_lint --list-rules                             print rule table
//   rrsim_lint --list-allows <path>...                  audit suppressions
//
// --list-allows prints every rrsim-lint-allow annotation in the given
// trees (file:line, suppressed rules, justification) so suppressions can
// be audited in one pass instead of grepping.
//
// Directories are walked recursively in sorted order (deterministic
// output); only C++ sources/headers are linted. Exit status is 1 if any
// unsuppressed finding was reported, 2 on usage/IO errors, 0 otherwise.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "flow.h"
#include "linter.h"
#include "scan.h"

namespace fs = std::filesystem;
using rrsim::lint::Category;
using rrsim::lint::Finding;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".hh";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_regular_file(root)) {
    files.push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && is_cpp_source(entry.path())) {
      files.push_back(entry.path().string());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Category* forced = nullptr;
  Category forced_storage = Category::kSrc;
  bool list_allows = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rrsim::lint::rule_table()) {
        std::printf("%-22s %s\n", r.id, r.summary);
      }
      return 0;
    }
    if (arg == "--list-allows") {
      list_allows = true;
      continue;
    }
    if (arg.rfind("--treat-as=", 0) == 0) {
      const std::string cat = arg.substr(11);
      if (cat == "src") {
        forced_storage = Category::kSrc;
      } else if (cat == "bench") {
        forced_storage = Category::kBench;
      } else if (cat == "tests") {
        forced_storage = Category::kTests;
      } else {
        std::fprintf(stderr, "rrsim_lint: unknown category '%s'\n",
                     cat.c_str());
        return 2;
      }
      forced = &forced_storage;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rrsim_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    }
    roots.push_back(arg);
  }

  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: rrsim_lint [--treat-as=src|bench|tests] <path>...\n"
                 "       rrsim_lint --list-rules\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::fprintf(stderr, "rrsim_lint: no such path: %s\n", root.c_str());
      return 2;
    }
    collect(root, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  if (list_allows) {
    // Suppression audit: print every valid allow annotation with its
    // justification. Malformed allows surface through the normal lint
    // run, not here.
    std::size_t total = 0;
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "rrsim_lint: cannot read %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      rrsim::lint::AllowSet allows;
      std::vector<Finding> sink;
      rrsim::lint::strip(file, buf.str(), allows, sink);
      for (const rrsim::lint::AllowRecord& rec : allows.records) {
        std::string rules;
        for (const std::string& r : rec.rules) {
          if (!rules.empty()) rules += ",";
          rules += r;
        }
        std::printf("%s:%d: [%s] %s\n", file.c_str(), rec.line,
                    rules.c_str(), rec.justification.c_str());
        ++total;
      }
    }
    std::printf("rrsim_lint: %zu allow annotation(s) in %zu file(s)\n",
                total, files.size());
    return 0;
  }

  std::vector<Finding> findings;
  rrsim::lint::FileSet shared_files;
  int io_errors = 0;
  for (const std::string& file : files) {
    if (!rrsim::lint::lint_file(file, forced, findings, &shared_files)) {
      std::fprintf(stderr, "rrsim_lint: cannot read %s\n", file.c_str());
      ++io_errors;
    }
  }

  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("rrsim_lint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
  }
  if (io_errors != 0) return 2;
  return findings.empty() ? 0 : 1;
}
