// Synthetic tie-heavy SWF trace shared by the rrsim_check CLI
// (--gen-ties), bench/micro_check and the explorer tests — one
// generator, so the bench measures exactly the trace shape the CI
// `check` job gates on.
#pragma once

#include <string>

namespace rrsim::check {

/// Writes `slots` 60-second arrival slots of `ties_per_slot`
/// identical-timestamp jobs of varied width/length — each slot is a tie
/// cohort on whichever cluster its jobs land — to `basename` under the
/// system temp directory and returns the full path.
std::string write_ties_trace(int slots, int ties_per_slot,
                             const std::string& basename);

}  // namespace rrsim::check
