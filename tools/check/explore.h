// Tie-break schedule explorer (DPOR-lite).
//
// The DES kernel dispatches same-(time, priority) cohorts in seq order —
// one canonical schedule out of the s! ways each cohort of size s could
// legally drain. Model results must not depend on that arbitrary choice:
// any metric that moves when a tie cohort is permuted is an artifact of
// insertion order, not of the system being modelled. This library drives
// des::TieBreakPolicy to visit the other schedules and check.
//
// Shape of an exploration:
//   1. Census run: a policy that picks seq order everywhere (bit-identical
//      to no policy at all) while recording every cohort of size >= 2 plus
//      a coupling sample from the kernel's partition metadata.
//   2. Per cohort, enumerate alternative orders — exhaustively for
//      cohorts of size <= k (k! - 1 permutations), by seeded sampling
//      above — and prune DPOR-style: a permutation that only reorders
//      events proven independent (distinct cluster tags, zero
//      cross-cluster coupling at the cohort's timestamp) is schedule-
//      equivalent to a canonical representative and need not be replayed.
//   3. Replay each surviving permutation through the probe and compare an
//      order-insensitive checksum of the per-job outcomes plus headline
//      metrics (mean / p99 stretch, duplicate starts) against the census
//      baseline.
//   4. For each diverging cohort, minimize the witness: try the s - 1
//      single adjacent transpositions and keep the first that already
//      reproduces the divergence.
//
// The probe abstraction keeps the explorer kernel-agnostic: the same loop
// drives the classic single-simulation kernel and the PDES coordinator
// (pdes_jobs == 1, so policy calls stay single-threaded). In an
// RRSIM_VALIDATE build every replay additionally runs under the kernel's
// internal oracles (calendar order, CBF/EASY rebuild replicas), which
// turns the explorer into a fuzzer for the incremental fast paths under
// permuted schedules.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "rrsim/core/experiment.h"
#include "rrsim/des/simulation.h"
#include "rrsim/metrics/record.h"

namespace rrsim::check {

/// Coupling sample when no probe was attached for a partition: unknown,
/// treated as "everything may interact" (no pruning).
inline constexpr std::uint64_t kCouplingUnknown = ~0ull;

/// Order-insensitive digest of one run: per-job outcomes folded
/// commutatively (so finish order does not matter) plus the headline
/// metrics the paper reports.
struct RunOutcome {
  std::uint64_t outcome_hash = 0;
  std::uint64_t jobs = 0;
  double mean_stretch = 0.0;
  double p99_stretch = 0.0;
  std::uint64_t duplicate_starts = 0;
};

/// Digest of a finished record set. Exposed for tests; ExperimentProbe
/// uses it internally.
RunOutcome outcome_of(const metrics::JobRecords& records,
                      std::uint64_t duplicate_starts);

/// One deterministic end-to-end run under a given tie-break policy. The
/// probe owns everything about the run except the policy.
class ScheduleProbe {
 public:
  virtual ~ScheduleProbe() = default;
  virtual RunOutcome run(des::TieBreakPolicy& policy) = 0;
};

/// Probe over core::run_experiment — classic kernel, or PDES when
/// config.pdes is set (pdes_jobs is forced to 1). Requires
/// retain_records: the outcome checksum needs per-job records.
class ExperimentProbe final : public ScheduleProbe {
 public:
  explicit ExperimentProbe(core::ExperimentConfig config);
  RunOutcome run(des::TieBreakPolicy& policy) override;
  const core::ExperimentConfig& config() const noexcept { return config_; }

 private:
  core::ExperimentConfig config_;
};

/// A tie cohort recorded by the census pass.
struct TieGroupRecord {
  std::uint64_t id = 0;         ///< kernel group ordinal (replay address)
  std::uint32_t partition = 0;
  des::Time time = 0.0;
  int priority = 0;
  /// First-pick membership snapshot, seq ascending.
  std::vector<des::TieEvent> members;
  /// Cross-partition coupling sampled at first pick (kCouplingUnknown if
  /// no probe was attached for the cohort's partition).
  std::uint64_t coupling = kCouplingUnknown;
};

/// Baseline policy: picks seq order everywhere (dispatch-identical to
/// running without a policy) and records every cohort of size >= 2.
class CensusPolicy : public des::TieBreakPolicy {
 public:
  std::size_t pick(const des::TieGroup& group) override;
  void attach_coupling_probe(std::uint32_t partition,
                             std::function<std::uint64_t()> probe) override;

  const std::vector<TieGroupRecord>& groups() const noexcept {
    return groups_;
  }
  /// Clears recorded groups and probes for reuse across runs.
  void reset();

 private:
  /// True if `group` is the one this partition recorded most recently —
  /// i.e. a resumed group mid-drain, possibly with other partitions'
  /// groups recorded in between. Updates the per-partition last-id map.
  bool already_recorded(const des::TieGroup& group);
  std::uint64_t coupling_sample(std::uint32_t partition) const;

  struct Probe {
    std::uint32_t partition;
    std::function<std::uint64_t()> fn;
  };
  std::vector<TieGroupRecord> groups_;
  std::vector<Probe> probes_;
  /// partition -> id of the last group recorded for it.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> last_ids_;
};

/// Replay policy: applies one permutation to one target cohort, seq order
/// everywhere else. Events that join the cohort while it drains (same
/// (t, p) scheduled mid-group) queue behind the permuted prefix in seq
/// order. If the target cohort's membership does not match the census
/// snapshot at first pick, the policy falls back to seq order and flags
/// replay_mismatch() — the schedule prefix was not reproduced.
class PermutationPolicy : public des::TieBreakPolicy {
 public:
  /// `ranks` is a permutation of [0, group.members.size()): position i of
  /// the replayed cohort dispatches census member ranks[i].
  PermutationPolicy(const TieGroupRecord& group,
                    const std::vector<std::uint32_t>& ranks);
  std::size_t pick(const des::TieGroup& group) override;
  bool replay_mismatch() const noexcept { return mismatch_; }
  bool replayed() const noexcept { return verified_; }

 private:
  std::uint64_t target_id_;
  std::uint32_t target_partition_;
  std::vector<std::uint64_t> expected_;  ///< census seqs, ascending
  std::vector<std::uint64_t> order_;     ///< seqs in permuted order
  std::size_t cursor_ = 0;
  bool verified_ = false;
  bool mismatch_ = false;
};

struct ExploreOptions {
  /// Cohorts of size <= exhaustive_k are explored exhaustively
  /// (size! - 1 alternative orders before pruning).
  std::size_t exhaustive_k = 4;
  /// Seeded random shuffles per cohort above exhaustive_k.
  std::size_t samples_above_k = 4;
  std::uint64_t seed = 1;
  /// Cohort budget (0 = all). Cohorts beyond it are counted, not run.
  std::size_t max_groups = 0;
  /// Total replay budget (0 = unbounded), witness replays excluded.
  std::size_t max_schedules = 0;
  /// Relative drift on headline metrics tolerated by the verdict. Zero
  /// is strict: the verdict then requires bit-identical outcome hashes,
  /// not merely zero measured headline drift.
  double drift_tolerance = 0.0;
  /// Minimize the first divergence per cohort to an adjacent
  /// transposition when one reproduces it.
  bool minimize_witnesses = true;
  /// Divergence records kept in the report (all are still counted).
  std::size_t max_divergences = 16;
};

/// One schedule whose outcome differs from the baseline.
struct Divergence {
  std::uint64_t group_id = 0;
  std::uint32_t partition = 0;
  des::Time time = 0.0;
  int priority = 0;
  std::size_t group_size = 0;
  std::vector<std::uint32_t> permutation;  ///< ranks that diverged
  RunOutcome outcome;
  double drift_mean_stretch = 0.0;
  double drift_p99_stretch = 0.0;
  double drift_duplicate_starts = 0.0;
  /// Minimized witness: a single adjacent transposition when one
  /// reproduces a divergence, otherwise `permutation` itself.
  std::vector<std::uint32_t> witness;
  bool witness_is_transposition = false;
};

struct ExploreReport {
  RunOutcome baseline;
  std::uint64_t groups_total = 0;     ///< census cohorts of size >= 2
  std::uint64_t groups_explored = 0;
  std::uint64_t groups_skipped = 0;   ///< over budget (max_groups /
                                      ///< max_schedules)
  std::uint64_t schedules_explored = 0;
  std::uint64_t schedules_pruned = 0;  ///< DPOR-equivalent, not replayed
  std::uint64_t witness_replays = 0;
  std::uint64_t divergence_count = 0;  ///< diverging schedules (all)
  std::uint64_t replay_mismatches = 0;
  bool identical = true;   ///< every replay matched the baseline checksum
  double max_drift = 0.0;  ///< worst relative headline drift seen
  bool within_tolerance = true;  ///< no replay mismatch, and identical
                                 ///< (tolerance 0) or max_drift <=
                                 ///< tolerance (tolerance > 0)
  std::vector<Divergence> divergences;  ///< capped at max_divergences
  bool oracles_armed = false;  ///< RRSIM_VALIDATE build: every replay ran
                               ///< under the kernel/scheduler oracles
  std::uint64_t seed = 0;
  std::size_t exhaustive_k = 0;
};

/// Runs the census + exploration loop described above.
ExploreReport explore(ScheduleProbe& probe, const ExploreOptions& opts);

/// Machine-readable report (one JSON object).
void write_report_json(const ExploreReport& report, std::FILE* out);

/// DPOR-lite canonical form of `ranks` for cohort `group`: adjacent pairs
/// that are out of seq order *and* provably independent (distinct cluster
/// tags, both tagged, coupling == 0) are bubbled back until fixpoint. Two
/// permutations with equal canonical forms are schedule-equivalent; the
/// identity canonical form means equivalent to the baseline. Exposed for
/// tests.
std::vector<std::uint32_t> canonical_ranks(const TieGroupRecord& group,
                                           std::vector<std::uint32_t> ranks);

}  // namespace rrsim::check
