#include "explore.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "rrsim/util/rng.h"
#include "rrsim/util/validate.h"

namespace rrsim::check {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::uint64_t bits_of(double x) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

std::uint64_t rotl64(std::uint64_t v, unsigned r) noexcept {
  r &= 63u;
  return r == 0 ? v : (v << r) | (v >> (64u - r));
}

std::uint64_t record_hash(const metrics::JobRecord& r) noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, r.grid_id);
  fnv_mix(h, r.origin_cluster);
  fnv_mix(h, r.winner_cluster);
  fnv_mix(h, r.redundant ? 1u : 0u);
  fnv_mix(h, static_cast<std::uint64_t>(r.replicas));
  fnv_mix(h, static_cast<std::uint64_t>(r.replicas_delivered));
  fnv_mix(h, static_cast<std::uint64_t>(r.nodes));
  fnv_mix(h, bits_of(r.submit_time));
  fnv_mix(h, bits_of(r.start_time));
  fnv_mix(h, bits_of(r.finish_time));
  fnv_mix(h, bits_of(r.actual_time));
  fnv_mix(h, bits_of(r.requested_time));
  return h;
}

/// Linear-interpolated quantile of a sorted sample (matches the
/// convention metrics::OnlineAccumulator targets).
double quantile_sorted(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

double rel_drift(double value, double base) noexcept {
  const double denom = std::max(std::abs(base), 1e-9);
  return std::abs(value - base) / denom;
}

/// Worst relative drift of `out` vs `base` across the headline metrics.
double outcome_drift(const RunOutcome& out, const RunOutcome& base) noexcept {
  double d = rel_drift(out.mean_stretch, base.mean_stretch);
  d = std::max(d, rel_drift(out.p99_stretch, base.p99_stretch));
  d = std::max(d, std::abs(static_cast<double>(out.duplicate_starts) -
                           static_cast<double>(base.duplicate_starts)) /
                      std::max(static_cast<double>(base.duplicate_starts),
                               1.0));
  return d;
}

bool independent(const TieGroupRecord& g, std::uint32_t a, std::uint32_t b) {
  if (g.coupling != 0) return false;  // kCouplingUnknown is nonzero too
  const std::uint32_t ta = g.members[a].tag;
  const std::uint32_t tb = g.members[b].tag;
  return ta != des::kNoEventTag && tb != des::kNoEventTag && ta != tb;
}

}  // namespace

RunOutcome outcome_of(const metrics::JobRecords& records,
                      std::uint64_t duplicate_starts) {
  RunOutcome out;
  out.jobs = records.size();
  out.duplicate_starts = duplicate_starts;
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  std::vector<double> stretches;
  stretches.reserve(records.size());
  for (const metrics::JobRecord& r : records) {
    const std::uint64_t h = record_hash(r);
    sum += h;  // commutative: finish order must not matter
    mix ^= rotl64(h, static_cast<unsigned>(h & 63u));
    stretches.push_back(metrics::stretch_of(r));
    out.mean_stretch += stretches.back();
  }
  if (!records.empty()) {
    out.mean_stretch /= static_cast<double>(records.size());
  }
  std::sort(stretches.begin(), stretches.end());
  out.p99_stretch = quantile_sorted(stretches, 0.99);
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, sum);
  fnv_mix(h, mix);
  fnv_mix(h, out.jobs);
  fnv_mix(h, duplicate_starts);
  out.outcome_hash = h;
  return out;
}

ExperimentProbe::ExperimentProbe(core::ExperimentConfig config)
    : config_(std::move(config)) {
  if (!config_.retain_records) {
    throw std::invalid_argument(
        "rrsim_check: the outcome checksum needs per-job records "
        "(retain_records must stay true)");
  }
  if (config_.pdes) config_.pdes_jobs = 1;  // policy calls single-threaded
}

RunOutcome ExperimentProbe::run(des::TieBreakPolicy& policy) {
  core::ExperimentConfig cfg = config_;
  cfg.tie_break_policy = &policy;
  const core::SimResult res = core::run_experiment(cfg);
  return outcome_of(res.records, res.duplicate_starts);
}

bool CensusPolicy::already_recorded(const des::TieGroup& group) {
  // Group ids are dense per kernel instance, and a group only resumes
  // (same id, repeated picks) while it is still its partition's current
  // group — so one last-seen id per partition suffices. Comparing against
  // groups_.back() alone would not: in PDES mode another partition's
  // group can be recorded between two picks of a resumed group, and the
  // duplicate record's mid-drain membership would later flag a spurious
  // replay mismatch.
  for (auto& [partition, id] : last_ids_) {
    if (partition == group.partition) {
      if (id == group.id) return true;
      id = group.id;
      return false;
    }
  }
  last_ids_.emplace_back(group.partition, group.id);
  return false;
}

std::size_t CensusPolicy::pick(const des::TieGroup& group) {
  if (group.size >= 2 && !already_recorded(group)) {
    TieGroupRecord rec;
    rec.id = group.id;
    rec.partition = group.partition;
    rec.time = group.time;
    rec.priority = group.priority;
    rec.members.assign(group.members, group.members + group.size);
    rec.coupling = coupling_sample(group.partition);
    groups_.push_back(std::move(rec));
  }
  return 0;
}

void CensusPolicy::attach_coupling_probe(std::uint32_t partition,
                                         std::function<std::uint64_t()> probe) {
  for (Probe& p : probes_) {
    if (p.partition == partition) {  // re-attached for a fresh run
      p.fn = std::move(probe);
      return;
    }
  }
  probes_.push_back(Probe{partition, std::move(probe)});
}

std::uint64_t CensusPolicy::coupling_sample(std::uint32_t partition) const {
  for (const Probe& p : probes_) {
    if (p.partition == partition && p.fn) return p.fn();
  }
  return kCouplingUnknown;
}

void CensusPolicy::reset() {
  groups_.clear();
  probes_.clear();
  last_ids_.clear();
}

PermutationPolicy::PermutationPolicy(const TieGroupRecord& group,
                                     const std::vector<std::uint32_t>& ranks)
    : target_id_(group.id), target_partition_(group.partition) {
  if (ranks.size() != group.members.size()) {
    throw std::invalid_argument("rrsim_check: rank vector size mismatch");
  }
  expected_.reserve(group.members.size());
  for (const des::TieEvent& e : group.members) expected_.push_back(e.seq);
  order_.reserve(ranks.size());
  for (const std::uint32_t r : ranks) {
    if (r >= group.members.size()) {
      throw std::invalid_argument("rrsim_check: rank out of range");
    }
    order_.push_back(group.members[r].seq);
  }
}

std::size_t PermutationPolicy::pick(const des::TieGroup& group) {
  if (group.partition != target_partition_ || group.id != target_id_) {
    return 0;
  }
  if (!verified_) {
    verified_ = true;
    bool ok = group.size == expected_.size();
    for (std::size_t i = 0; ok && i < group.size; ++i) {
      ok = group.members[i].seq == expected_[i];
    }
    if (!ok) mismatch_ = true;  // prefix not reproduced; fall back
  }
  if (mismatch_) return 0;
  // Dispatch the permuted order; seqs already consumed (or cancelled out
  // from under us) are skipped, and late joiners drain in seq order after
  // the permuted prefix is exhausted.
  while (cursor_ < order_.size()) {
    const std::uint64_t want = order_[cursor_];
    for (std::size_t i = 0; i < group.size; ++i) {
      if (group.members[i].seq == want) {
        ++cursor_;
        return i;
      }
    }
    ++cursor_;
  }
  return 0;
}

std::vector<std::uint32_t> canonical_ranks(const TieGroupRecord& group,
                                           std::vector<std::uint32_t> ranks) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = 0; p + 1 < ranks.size(); ++p) {
      if (ranks[p] > ranks[p + 1] &&
          independent(group, ranks[p], ranks[p + 1])) {
        std::swap(ranks[p], ranks[p + 1]);
        changed = true;
      }
    }
  }
  return ranks;
}

namespace {

bool is_identity(const std::vector<std::uint32_t>& ranks) noexcept {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (ranks[i] != i) return false;
  }
  return true;
}

/// Alternative orders for one cohort, already canonicalized and deduped.
/// Increments `pruned` for every candidate folded into an equivalence
/// class that was already covered (the identity class counts: those
/// schedules are proven equal to the baseline without a replay).
std::vector<std::vector<std::uint32_t>> candidate_orders(
    const TieGroupRecord& group, const ExploreOptions& opts,
    std::uint64_t& pruned) {
  const std::size_t s = group.members.size();
  std::vector<std::vector<std::uint32_t>> todo;
  auto consider = [&](std::vector<std::uint32_t> ranks) {
    std::vector<std::uint32_t> canon = canonical_ranks(group, std::move(ranks));
    if (is_identity(canon) ||
        std::find(todo.begin(), todo.end(), canon) != todo.end()) {
      ++pruned;
      return;
    }
    todo.push_back(std::move(canon));
  };
  std::vector<std::uint32_t> ranks(s);
  for (std::size_t i = 0; i < s; ++i) ranks[i] = static_cast<std::uint32_t>(i);
  if (s <= opts.exhaustive_k) {
    while (std::next_permutation(ranks.begin(), ranks.end())) {
      consider(ranks);
    }
  } else {
    // Seeded shuffles, independent of exploration order: the stream is
    // derived from (seed, partition, cohort id).
    util::Rng rng =
        util::Rng(opts.seed, 0x5eedu ^ group.partition).fork(group.id);
    for (std::size_t n = 0; n < opts.samples_above_k; ++n) {
      for (std::size_t i = s - 1; i > 0; --i) {
        std::swap(ranks[i], ranks[rng.below(i + 1)]);
      }
      if (is_identity(ranks)) {
        ++pruned;  // the baseline schedule, drawn by chance
        continue;
      }
      consider(ranks);
    }
  }
  return todo;
}

}  // namespace

ExploreReport explore(ScheduleProbe& probe, const ExploreOptions& opts) {
  ExploreReport rep;
  rep.seed = opts.seed;
  rep.exhaustive_k = opts.exhaustive_k;
  rep.oracles_armed = RRSIM_VALIDATE_ENABLED != 0;

  CensusPolicy census;
  rep.baseline = probe.run(census);
  const std::vector<TieGroupRecord>& groups = census.groups();
  rep.groups_total = groups.size();

  for (const TieGroupRecord& group : groups) {
    if ((opts.max_groups != 0 && rep.groups_explored >= opts.max_groups) ||
        (opts.max_schedules != 0 &&
         rep.schedules_explored >= opts.max_schedules)) {
      ++rep.groups_skipped;
      continue;
    }
    ++rep.groups_explored;
    const std::vector<std::vector<std::uint32_t>> todo =
        candidate_orders(group, opts, rep.schedules_pruned);
    bool minimized_this_group = false;
    for (const std::vector<std::uint32_t>& ranks : todo) {
      if (opts.max_schedules != 0 &&
          rep.schedules_explored >= opts.max_schedules) {
        break;
      }
      PermutationPolicy policy(group, ranks);
      const RunOutcome out = probe.run(policy);
      ++rep.schedules_explored;
      if (policy.replay_mismatch()) {
        ++rep.replay_mismatches;
        continue;
      }
      if (out.outcome_hash == rep.baseline.outcome_hash) continue;

      rep.identical = false;
      ++rep.divergence_count;
      const double drift = outcome_drift(out, rep.baseline);
      rep.max_drift = std::max(rep.max_drift, drift);
      if (rep.divergences.size() >= opts.max_divergences) continue;

      Divergence d;
      d.group_id = group.id;
      d.partition = group.partition;
      d.time = group.time;
      d.priority = group.priority;
      d.group_size = group.members.size();
      d.permutation = ranks;
      d.outcome = out;
      d.drift_mean_stretch =
          rel_drift(out.mean_stretch, rep.baseline.mean_stretch);
      d.drift_p99_stretch =
          rel_drift(out.p99_stretch, rep.baseline.p99_stretch);
      d.drift_duplicate_starts =
          std::abs(static_cast<double>(out.duplicate_starts) -
                   static_cast<double>(rep.baseline.duplicate_starts));
      d.witness = ranks;
      if (opts.minimize_witnesses && !minimized_this_group) {
        minimized_this_group = true;
        const std::size_t s = group.members.size();
        std::vector<std::uint32_t> tau(s);
        for (std::size_t p = 0; p + 1 < s; ++p) {
          for (std::size_t i = 0; i < s; ++i) {
            tau[i] = static_cast<std::uint32_t>(i);
          }
          std::swap(tau[p], tau[p + 1]);
          if (is_identity(canonical_ranks(group, tau))) {
            continue;  // transposition of an independent pair: equivalent
          }
          PermutationPolicy wpol(group, tau);
          const RunOutcome wout = probe.run(wpol);
          ++rep.witness_replays;
          if (!wpol.replay_mismatch() &&
              wout.outcome_hash != rep.baseline.outcome_hash) {
            d.witness = tau;
            d.witness_is_transposition = true;
            break;
          }
        }
      }
      rep.divergences.push_back(std::move(d));
    }
  }
  // A zero tolerance demands bit-identity, not merely zero measured
  // drift: a schedule can swap per-job outcomes (outcome_hash moves)
  // while the headline aggregates happen to land on the same values.
  const bool drift_ok = opts.drift_tolerance == 0.0
                            ? rep.identical
                            : rep.max_drift <= opts.drift_tolerance;
  rep.within_tolerance = drift_ok && rep.replay_mismatches == 0;
  return rep;
}

namespace {

void json_outcome(std::FILE* out, const RunOutcome& o) {
  std::fprintf(out,
               "{\"outcome_hash\":\"%016llx\",\"jobs\":%llu,"
               "\"mean_stretch\":%.17g,\"p99_stretch\":%.17g,"
               "\"duplicate_starts\":%llu}",
               static_cast<unsigned long long>(o.outcome_hash),
               static_cast<unsigned long long>(o.jobs), o.mean_stretch,
               o.p99_stretch,
               static_cast<unsigned long long>(o.duplicate_starts));
}

void json_ranks(std::FILE* out, const std::vector<std::uint32_t>& ranks) {
  std::fputc('[', out);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::fprintf(out, "%s%u", i == 0 ? "" : ",", ranks[i]);
  }
  std::fputc(']', out);
}

}  // namespace

void write_report_json(const ExploreReport& r, std::FILE* out) {
  std::fprintf(out, "{\n  \"tool\": \"rrsim_check\",\n  \"baseline\": ");
  json_outcome(out, r.baseline);
  std::fprintf(out,
               ",\n  \"groups\": {\"total\": %llu, \"explored\": %llu, "
               "\"skipped\": %llu},\n",
               static_cast<unsigned long long>(r.groups_total),
               static_cast<unsigned long long>(r.groups_explored),
               static_cast<unsigned long long>(r.groups_skipped));
  const double denom =
      static_cast<double>(r.schedules_explored + r.schedules_pruned);
  std::fprintf(out,
               "  \"schedules\": {\"explored\": %llu, \"pruned\": %llu, "
               "\"pruning_ratio\": %.6g, \"witness_replays\": %llu},\n",
               static_cast<unsigned long long>(r.schedules_explored),
               static_cast<unsigned long long>(r.schedules_pruned),
               denom > 0.0 ? static_cast<double>(r.schedules_pruned) / denom
                           : 0.0,
               static_cast<unsigned long long>(r.witness_replays));
  std::fprintf(out,
               "  \"verdict\": {\"identical\": %s, \"divergences\": %llu, "
               "\"max_drift\": %.17g, \"within_tolerance\": %s, "
               "\"replay_mismatches\": %llu},\n",
               r.identical ? "true" : "false",
               static_cast<unsigned long long>(r.divergence_count),
               r.max_drift, r.within_tolerance ? "true" : "false",
               static_cast<unsigned long long>(r.replay_mismatches));
  std::fprintf(out, "  \"divergences\": [");
  for (std::size_t i = 0; i < r.divergences.size(); ++i) {
    const Divergence& d = r.divergences[i];
    std::fprintf(out,
                 "%s\n    {\"group\": %llu, \"partition\": %u, "
                 "\"time\": %.17g, \"priority\": %d, \"size\": %zu,\n"
                 "     \"permutation\": ",
                 i == 0 ? "" : ",",
                 static_cast<unsigned long long>(d.group_id), d.partition,
                 d.time, d.priority, d.group_size);
    json_ranks(out, d.permutation);
    std::fprintf(out, ", \"witness\": ");
    json_ranks(out, d.witness);
    std::fprintf(out,
                 ", \"witness_is_transposition\": %s,\n     \"outcome\": ",
                 d.witness_is_transposition ? "true" : "false");
    json_outcome(out, d.outcome);
    std::fprintf(out,
                 ",\n     \"drift\": {\"mean_stretch\": %.6g, "
                 "\"p99_stretch\": %.6g, \"duplicate_starts\": %.6g}}",
                 d.drift_mean_stretch, d.drift_p99_stretch,
                 d.drift_duplicate_starts);
  }
  std::fprintf(out, "%s],\n", r.divergences.empty() ? "" : "\n  ");
  std::fprintf(out,
               "  \"options\": {\"seed\": %llu, \"exhaustive_k\": %zu},\n"
               "  \"oracles_armed\": %s\n}\n",
               static_cast<unsigned long long>(r.seed), r.exhaustive_k,
               r.oracles_armed ? "true" : "false");
}

}  // namespace rrsim::check
