#include "ties_trace.h"

#include <filesystem>

#include "rrsim/workload/swf.h"

namespace rrsim::check {

std::string write_ties_trace(int slots, int ties_per_slot,
                             const std::string& basename) {
  workload::JobStream stream;
  int i = 0;
  for (int c = 0; c < slots; ++c) {
    for (int j = 0; j < ties_per_slot; ++j, ++i) {
      workload::JobSpec job;
      job.submit_time = 60.0 * static_cast<double>(c);
      job.nodes = 1 + i % 8;
      job.runtime = 30.0 + static_cast<double>(i % 7) * 12.5;
      job.requested_time = job.runtime + 10.0;
      stream.push_back(job);
    }
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / basename).string();
  workload::write_swf_file(path, stream);
  return path;
}

}  // namespace rrsim::check
