// rrsim_check — tie-break schedule explorer CLI.
//
// Replays one experiment configuration under permuted same-timestamp
// dispatch orders (tools/check/explore.h) and reports whether the model's
// outputs depend on the kernel's arbitrary seq-order tie-break.
//
// Usage:
//   rrsim_check [--preset=fig1-quick|fig1|base] [common experiment flags]
//               [--trace=swf_path] [--gen-ties=slots] [--check-k=4]
//               [--check-samples=4] [--check-seed=1]
//               [--check-max-groups=0] [--check-max-schedules=0]
//               [--check-drift-tol=0] [--check-no-minimize]
//               [--report=path.json] [--quiet]
//
// --gen-ties=N writes a synthetic tie-heavy SWF (N 60-second arrival
// slots, three identical-timestamp jobs each) to the temp directory and
// replays it — the self-contained worst case for tie cohorts, used by
// CI's `check` job so no trace fixture needs to live in the repo.
//
// Common experiment flags are the shared bench set (core/options.h):
// --clusters, --algo, --scheme, --pdes, --latency, --seed, ...
//
// Exit codes: 0 = outcomes bit-identical under every explored schedule
// (required at --check-drift-tol=0) or drift within the tolerance;
// 1 = tie-sensitive beyond tolerance (or a replay mismatch); 2 = usage or
// I/O error. In an RRSIM_VALIDATE build every replay also runs under the
// kernel and scheduler oracles, making this an incremental-fast-path
// fuzzer over permuted schedules (reported as "oracles_armed").
#include <cstdio>
#include <exception>
#include <string>

#include "explore.h"
#include "rrsim/core/options.h"
#include "rrsim/core/paper.h"
#include "rrsim/util/cli.h"
#include "ties_trace.h"

namespace {

int run(int argc, char** argv) {
  const rrsim::util::Cli cli(argc, argv);

  const std::string preset = cli.get_string("preset", "fig1-quick");
  rrsim::core::ExperimentConfig config;
  if (preset == "fig1") {
    config = rrsim::core::figure_config();
  } else if (preset == "fig1-quick") {
    config = rrsim::core::figure_config_quick();
  } else if (preset == "base") {
    config = rrsim::core::ExperimentConfig{};
  } else {
    std::fprintf(stderr, "rrsim_check: unknown --preset=%s\n",
                 preset.c_str());
    return 2;
  }
  config = rrsim::core::apply_common_flags(config, cli);
  if (cli.has("trace")) {
    config.trace_files.push_back(cli.get_string("trace", ""));
  }
  if (cli.has("gen-ties")) {
    const int slots = static_cast<int>(cli.get_int("gen-ties", 120));
    if (slots < 1) {
      std::fprintf(stderr, "rrsim_check: --gen-ties must be >= 1\n");
      return 2;
    }
    config.trace_files.push_back(rrsim::check::write_ties_trace(
        slots, /*ties_per_slot=*/3, "rrsim_check_ties.swf"));
  }

  rrsim::check::ExploreOptions opts;
  opts.exhaustive_k =
      static_cast<std::size_t>(cli.get_int("check-k", 4));
  opts.samples_above_k =
      static_cast<std::size_t>(cli.get_int("check-samples", 4));
  opts.seed = static_cast<std::uint64_t>(
      cli.get_int("check-seed", static_cast<std::int64_t>(config.seed)));
  opts.max_groups =
      static_cast<std::size_t>(cli.get_int("check-max-groups", 0));
  opts.max_schedules =
      static_cast<std::size_t>(cli.get_int("check-max-schedules", 0));
  opts.drift_tolerance = cli.get_double("check-drift-tol", 0.0);
  opts.minimize_witnesses = !cli.get_bool("check-no-minimize", false);

  rrsim::check::ExperimentProbe probe(config);
  const rrsim::check::ExploreReport report =
      rrsim::check::explore(probe, opts);

  if (cli.has("report")) {
    const std::string path = cli.get_string("report", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "rrsim_check: cannot write %s\n", path.c_str());
      return 2;
    }
    rrsim::check::write_report_json(report, f);
    std::fclose(f);
  }

  if (!cli.get_bool("quiet", false)) {
    std::printf("rrsim_check: %llu tie groups (%llu explored, %llu "
                "skipped), %llu schedules replayed, %llu pruned "
                "(DPOR), %llu witness replays%s\n",
                static_cast<unsigned long long>(report.groups_total),
                static_cast<unsigned long long>(report.groups_explored),
                static_cast<unsigned long long>(report.groups_skipped),
                static_cast<unsigned long long>(report.schedules_explored),
                static_cast<unsigned long long>(report.schedules_pruned),
                static_cast<unsigned long long>(report.witness_replays),
                report.oracles_armed ? " [oracles armed]" : "");
    if (report.identical) {
      std::printf("rrsim_check: verdict IDENTICAL — every explored "
                  "schedule reproduced outcome hash %016llx\n",
                  static_cast<unsigned long long>(
                      report.baseline.outcome_hash));
    } else {
      std::printf("rrsim_check: verdict TIE-SENSITIVE — %llu diverging "
                  "schedules, max headline drift %.6g (tolerance %.6g)\n",
                  static_cast<unsigned long long>(report.divergence_count),
                  report.max_drift, opts.drift_tolerance);
      for (const rrsim::check::Divergence& d : report.divergences) {
        std::printf("  group %llu (partition %u, t=%.6g, prio %d, size "
                    "%zu): drift mean=%.3g p99=%.3g dup=%g%s\n",
                    static_cast<unsigned long long>(d.group_id),
                    d.partition, d.time, d.priority, d.group_size,
                    d.drift_mean_stretch, d.drift_p99_stretch,
                    d.drift_duplicate_starts,
                    d.witness_is_transposition
                        ? " [witness: adjacent transposition]"
                        : "");
      }
    }
    if (report.replay_mismatches != 0) {
      std::printf("rrsim_check: WARNING — %llu replays failed to "
                  "reproduce the census prefix\n",
                  static_cast<unsigned long long>(report.replay_mismatches));
    }
  }
  return report.within_tolerance ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rrsim_check: %s\n", e.what());
    return 2;
  }
}
